package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ReceiverScore is one receiver's journaled result on one trial. Every
// field is deterministic (integer counts and ratios of them), so a
// resumed run aggregates to byte-identical output.
type ReceiverScore struct {
	Offered  int `json:"offered"`
	Detected int `json:"detected"`
	Decoded  int `json:"decoded"`
	False    int `json:"false"`
	// PRR is Decoded/Offered; Throughput is Decoded/duration (pkts/s);
	// DetectionRate is Detected/Offered. Stored redundantly so the
	// journal is self-describing for external tooling.
	PRR           float64 `json:"prr"`
	Throughput    float64 `json:"throughput"`
	DetectionRate float64 `json:"detection_rate"`
}

// TrialResult is one journal line: a completed trial's scores plus
// provenance. ElapsedMS and Reconnects are informational (wall-clock and
// transport noise) and MUST stay out of every aggregate so resumed runs
// remain byte-identical.
type TrialResult struct {
	ConfigSHA string                   `json:"config_sha"`
	Name      string                   `json:"name"`
	Key       string                   `json:"key"`
	Drive     string                   `json:"drive"`
	Seed      int64                    `json:"seed"`
	Receivers map[string]ReceiverScore `json:"receivers"`

	ElapsedMS  float64 `json:"elapsed_ms"`
	Reconnects int64   `json:"reconnects,omitempty"`
}

// ErrJournalConfigMismatch reports a journal written by a different
// config (edited file, different experiment): resuming would silently mix
// incomparable trials, so it is refused.
var ErrJournalConfigMismatch = errors.New("experiment: journal belongs to a different config")

// Journal checkpoints completed trials as NDJSON, one TrialResult per
// line, fsync-free but flushed per line (the line either lands whole or
// is truncated by the kill — ReadJournal tolerates a torn final line).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (or creates) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: open journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Append writes one completed trial. Safe for concurrent workers; each
// line is a single Write syscall on an O_APPEND descriptor, so lines
// never interleave.
func (j *Journal) Append(res TrialResult) error {
	line, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("experiment: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil { //cic:lock-ok: the append-only journal serialises writers by design — one O_APPEND syscall under mu keeps lines atomic
		return fmt.Errorf("experiment: journal append: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// ReadJournal loads every completed trial from an NDJSON journal,
// verifying each line against the config identity. A truncated final
// line (runner killed mid-write) is skipped; a malformed line anywhere
// else, or a line stamped with a different config SHA, is an error.
// A missing file is an empty journal.
func ReadJournal(path, configSHA string) (map[string]TrialResult, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return map[string]TrialResult{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: read journal: %w", err)
	}
	defer f.Close()
	return parseJournal(f, configSHA)
}

// parseJournal decodes the NDJSON stream. Split out for tests.
func parseJournal(r io.Reader, configSHA string) (map[string]TrialResult, error) {
	out := map[string]TrialResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		// A decode error is only fatal if any complete line follows it;
		// the final line may be torn by a kill and is then ignored.
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var res TrialResult
		if err := json.Unmarshal(line, &res); err != nil {
			pendingErr = fmt.Errorf("experiment: journal line %d: %w", lineNo, err)
			continue
		}
		if res.ConfigSHA != configSHA {
			return nil, fmt.Errorf("%w (line %d: %s)", ErrJournalConfigMismatch, lineNo, res.ConfigSHA)
		}
		out[res.Key] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiment: journal scan: %w", err)
	}
	return out, nil
}
