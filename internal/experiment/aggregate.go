package experiment

import (
	"fmt"
	"math"

	"cic/internal/eval"
)

// tCrit95 holds the two-tailed Student-t critical values at 95% for
// degrees of freedom 1..30; beyond 30 the normal 1.96 is close enough.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// meanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (Student-t, sample standard deviation). Fewer than
// two samples have no interval (half-width 0).
func meanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// metricValue extracts the config's sweep metric from a receiver score.
func metricValue(metric string, sc ReceiverScore) float64 {
	switch metric {
	case MetricPRR:
		return sc.PRR
	case MetricDetection:
		return sc.DetectionRate
	default:
		return sc.Throughput
	}
}

// yLabel names the sweep metric's axis.
func yLabel(metric string) string {
	switch metric {
	case MetricPRR:
		return "packet reception rate"
	case MetricDetection:
		return "detection rate"
	default:
		return "network throughput (pkts/s)"
	}
}

// seriesNames is the deterministic series order of a sweep figure.
func (c *Config) seriesNames() []string {
	if c.Metric == MetricDetection {
		return []string{"CIC", "FTrack", "LoRa"}
	}
	return c.ReceiverNames()
}

// Aggregate folds completed trials into one figure per deployment point:
// per (rate, receiver), the mean of the sweep metric across the seed
// matrix with its 95% confidence half-width (YErr set only when the seed
// count supports an interval). The computation uses only journaled
// deterministic fields in config order, so an uninterrupted run and a
// resumed run emit byte-identical figures. Trials missing from results
// are an error — aggregate after the matrix completes.
func Aggregate(cfg *Config, results map[string]TrialResult) ([]eval.Figure, error) {
	if cfg.Kind != KindSweep {
		return nil, fmt.Errorf("experiment: Aggregate wants a %q config", KindSweep)
	}
	names := cfg.seriesNames()
	withCI := cfg.SeedCount() >= 2
	var figs []eval.Figure
	for _, d := range cfg.Deployments {
		dep := d.Deployment()
		fig := eval.Figure{
			ID:     cfg.figureID(d),
			Title:  fmt.Sprintf("%s for %s (%s)", titleFor(cfg.Metric), dep.Name, dep.Label),
			XLabel: "offered pkts/s",
			YLabel: yLabel(cfg.Metric),
		}
		series := make([]eval.Series, len(names))
		for i, n := range names {
			series[i].Name = n
			if withCI {
				series[i].YErr = []float64{}
			}
		}
		for _, rate := range cfg.Rates {
			samples := make([][]float64, len(names))
			for si := 0; si < cfg.SeedCount(); si++ {
				key := fmt.Sprintf("%s/r%g/s%d", d.Base, rate, si)
				tr, ok := results[key]
				if !ok {
					return nil, fmt.Errorf("experiment: aggregate: trial %s missing (matrix incomplete — rerun to resume)", key)
				}
				for ni, name := range names {
					sc, ok := tr.Receivers[name]
					if !ok {
						return nil, fmt.Errorf("experiment: aggregate: trial %s has no %s score", key, name)
					}
					samples[ni] = append(samples[ni], metricValue(cfg.Metric, sc))
				}
			}
			for ni := range names {
				mean, half := meanCI95(samples[ni])
				series[ni].X = append(series[ni].X, rate)
				series[ni].Y = append(series[ni].Y, mean)
				if withCI {
					series[ni].YErr = append(series[ni].YErr, half)
				}
			}
		}
		fig.Series = series
		figs = append(figs, fig)
		if cfg.Summary && cfg.Metric == MetricThroughput {
			sum, err := eval.Summary(fig)
			if err != nil {
				return nil, fmt.Errorf("experiment: %w", err)
			}
			figs = append(figs, sum)
		}
	}
	return figs, nil
}

// titleFor names the sweep metric for figure titles.
func titleFor(metric string) string {
	switch metric {
	case MetricPRR:
		return "Packet Reception Rate"
	case MetricDetection:
		return "Packet Detection"
	default:
		return "Network Throughput"
	}
}
