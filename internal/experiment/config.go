// Package experiment is the declarative evaluation harness: a versioned
// ExperimentConfig (JSON, strictly parsed) declares node populations,
// deployment geometry, channel parameters, offered-load sweeps, receiver
// sets, a seed matrix and an optional fault schedule; a Runner expands it
// into a deterministic trial matrix, executes the trials on a bounded
// worker pool (in-process cic.Gateway or a cic-gatewayd streamed over TCP),
// journals every completed trial as NDJSON for resume-without-recompute,
// and an aggregator folds the journal into per-point mean ± 95% CI figures
// through the internal/eval machinery.
//
// docs/EXPERIMENTS.md documents the schema, journal format and resume
// semantics; committed configs live under experiments/.
package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"cic"
	"cic/internal/chirp"
	"cic/internal/eval"
	"cic/internal/fault"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/sim"
)

// SchemaVersion is the config version this package parses.
const SchemaVersion = 1

// Experiment kinds.
const (
	// KindSweep runs the trial matrix: deployments × rates × seeds, each
	// trial scoring the configured receivers, aggregated with 95% CIs.
	KindSweep = "sweep"
	// KindFigure runs one of the analytic single-shot figures from
	// internal/eval (heisenberg, cancellation, clutter, snr, maps,
	// spectra, temporal, ablation, icss) without a trial matrix.
	KindFigure = "figure"
)

// Sweep metrics.
const (
	MetricThroughput = "throughput" // decoded pkts/s (Figs 28–31)
	MetricPRR        = "prr"        // decoded / offered
	MetricDetection  = "detection"  // preamble detection rate (Figs 32–35)
)

// Config is the versioned, declarative description of one experiment.
// Parse rejects unknown fields, so configs cannot silently drift from the
// schema; the zero value of every optional field means "default".
type Config struct {
	// Version must equal SchemaVersion.
	Version int `json:"version"`
	// Name is the experiment identifier: journal lines carry it, and it
	// prefixes default output paths.
	Name string `json:"name"`
	// Kind selects KindSweep (trial matrix) or KindFigure (one-shot).
	Kind string `json:"kind"`

	// Figure names the internal/eval figure to run when Kind is
	// KindFigure: one of heisenberg, cancellation, clutter, snr, maps,
	// spectra, temporal, ablation, icss.
	Figure string `json:"figure,omitempty"`

	// Metric selects what a sweep trial measures: MetricThroughput,
	// MetricPRR or MetricDetection. Sweep only.
	Metric string `json:"metric,omitempty"`

	// Channel fixes the LoRa PHY; zero fields take the paper defaults
	// (SF8, 250 kHz, OSR 4, CR 4/5, sync word 0x34).
	Channel Channel `json:"channel"`

	// Deployments lists the deployment points of the matrix. Each entry
	// starts from a named base (D1–D4) and may override the population
	// and enable the city-scale extensions.
	Deployments []DeploymentSpec `json:"deployments"`

	// Rates is the offered-load sweep in aggregate packets/second.
	Rates []float64 `json:"rates"`
	// DurationS is the seconds of traffic simulated per rate point.
	DurationS float64 `json:"duration_s"`
	// PayloadLen is the packet payload size in bytes (paper: 28).
	PayloadLen int `json:"payload_len"`

	// Receivers names the receivers each sweep trial scores, from
	// eval.ReceiverByName (CIC, FTrack, Choir, LoRa and the CIC ablation
	// variants). Empty means the paper's four-receiver comparison.
	// Ignored when Metric is MetricDetection (the detection strategies
	// are fixed) and for KindFigure.
	Receivers []string `json:"receivers,omitempty"`

	// Seeds spans the seed matrix: Count trials per (deployment, rate)
	// point, with per-trial seeds derived from Base.
	Seeds Seeds `json:"seeds"`

	// Fault, when set, is an internal/fault schedule spec (e.g.
	// "seed=42;every=2;drop@65536") applied to the gatewayd drive mode's
	// ingestion connections. In-process trials ignore it.
	Fault string `json:"fault,omitempty"`

	// Workers bounds decode workers inside each receiver (0 means
	// GOMAXPROCS). Trial-level concurrency is a Runner option, not
	// config, so the same config runs identically on any machine.
	Workers int `json:"workers,omitempty"`

	// Summary additionally emits the headline-ratio figure (CIC ÷ LoRa,
	// CIC ÷ FTrack) for throughput sweeps.
	Summary bool `json:"summary,omitempty"`
}

// Channel fixes the LoRa PHY parameters of every node in the experiment.
type Channel struct {
	SF          int     `json:"sf,omitempty"`
	BandwidthHz float64 `json:"bandwidth_hz,omitempty"`
	OSR         int     `json:"osr,omitempty"`
	CR          string  `json:"cr,omitempty"` // "4/5".."4/8"
	SyncWord    int     `json:"sync_word,omitempty"`
}

// DeploymentSpec is one deployment point: a named base (D1–D4) plus
// overrides and the city-scale extensions.
type DeploymentSpec struct {
	// Base names the deployment template: D1, D2, D3 or D4.
	Base string `json:"base"`
	// FigureID overrides the emitted figure id for this deployment point
	// (e.g. "fig28"); empty derives "<name>_<base>".
	FigureID string `json:"figure_id,omitempty"`
	// Nodes overrides the population size (0 keeps the base's 20).
	Nodes int `json:"nodes,omitempty"`
	// MobilityDriftDB enables per-packet received-power drift (σ, dB).
	MobilityDriftDB float64 `json:"mobility_drift_db,omitempty"`
	// ShadowSigmaDB enables log-normal urban shadowing (σ, dB).
	ShadowSigmaDB float64 `json:"shadow_sigma_db,omitempty"`
	// DutyCycle caps per-node airtime (EU 868 MHz: 0.01; 0 = off).
	DutyCycle float64 `json:"duty_cycle,omitempty"`
}

// Seeds spans the seed matrix.
type Seeds struct {
	// Base seeds the whole experiment; every trial derives its own seed
	// from it, the deployment, the rate and the seed index.
	Base int64 `json:"base"`
	// Count is the number of seeded trials per (deployment, rate) point
	// (0 means 1). The aggregator needs ≥ 2 for confidence intervals.
	Count int `json:"count,omitempty"`
}

// figureNames are the KindFigure experiments, mirroring the legacy
// cic-experiments subcommands that are not sweeps.
var figureNames = map[string]bool{
	"heisenberg": true, "cancellation": true, "clutter": true,
	"snr": true, "maps": true, "spectra": true, "temporal": true,
	"ablation": true, "icss": true,
}

// Parse reads a strict-JSON config: unknown fields, trailing garbage and
// schema violations are all errors, so a typo in a committed config can
// never silently change an experiment.
func Parse(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("experiment: parse config: %w", err)
	}
	// A second document after the config is malformed input, not data.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("experiment: trailing data after config document")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return Parse(data)
}

// Validate checks the full schema. It is exhaustive by design: configs
// are committed artifacts, and a bad one must fail loudly at load time,
// not hours into a matrix.
func (c *Config) Validate() error {
	if c.Version != SchemaVersion {
		return fmt.Errorf("experiment: config version %d, this build speaks %d", c.Version, SchemaVersion)
	}
	if c.Name == "" {
		return fmt.Errorf("experiment: config has no name")
	}
	switch c.Kind {
	case KindSweep:
		switch c.Metric {
		case MetricThroughput, MetricPRR, MetricDetection:
		case "":
			return fmt.Errorf("experiment: sweep config needs a metric (throughput, prr or detection)")
		default:
			return fmt.Errorf("experiment: unknown metric %q", c.Metric)
		}
		if len(c.Rates) == 0 {
			return fmt.Errorf("experiment: sweep config has no rates")
		}
		if c.Figure != "" {
			return fmt.Errorf("experiment: figure %q is meaningless for a sweep (use kind %q)", c.Figure, KindFigure)
		}
	case KindFigure:
		if !figureNames[c.Figure] {
			return fmt.Errorf("experiment: unknown figure %q", c.Figure)
		}
		if c.Metric != "" {
			return fmt.Errorf("experiment: metric %q is meaningless for a figure config", c.Metric)
		}
		if c.Fault != "" {
			return fmt.Errorf("experiment: fault schedules apply only to sweep configs")
		}
	case "":
		return fmt.Errorf("experiment: config has no kind (want %q or %q)", KindSweep, KindFigure)
	default:
		return fmt.Errorf("experiment: unknown kind %q", c.Kind)
	}
	if err := c.Channel.validate(); err != nil {
		return err
	}
	if len(c.Deployments) == 0 {
		return fmt.Errorf("experiment: config has no deployments")
	}
	for i, d := range c.Deployments {
		if _, err := sim.DeploymentByName(d.Base); err != nil {
			return fmt.Errorf("experiment: deployment %d: %w", i, err)
		}
		if d.Nodes < 0 {
			return fmt.Errorf("experiment: deployment %d: nodes %d < 0", i, d.Nodes)
		}
		if d.Nodes > 100000 {
			return fmt.Errorf("experiment: deployment %d: nodes %d beyond the 100k city-scale cap", i, d.Nodes)
		}
		if d.MobilityDriftDB < 0 || d.MobilityDriftDB > 40 {
			return fmt.Errorf("experiment: deployment %d: mobility drift %g dB out of [0,40]", i, d.MobilityDriftDB)
		}
		if d.ShadowSigmaDB < 0 || d.ShadowSigmaDB > 40 {
			return fmt.Errorf("experiment: deployment %d: shadow sigma %g dB out of [0,40]", i, d.ShadowSigmaDB)
		}
		if d.DutyCycle < 0 || d.DutyCycle > 1 {
			return fmt.Errorf("experiment: deployment %d: duty cycle %g out of [0,1]", i, d.DutyCycle)
		}
	}
	for i, r := range c.Rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("experiment: rate %d (%g) must be a positive finite load", i, r)
		}
	}
	if c.Kind == KindSweep {
		if c.DurationS <= 0 || c.DurationS > 3600 {
			return fmt.Errorf("experiment: duration %g s out of (0,3600]", c.DurationS)
		}
	} else if c.DurationS < 0 || c.DurationS > 3600 {
		return fmt.Errorf("experiment: duration %g s out of [0,3600]", c.DurationS)
	}
	if c.PayloadLen < 0 || c.PayloadLen > 255 {
		return fmt.Errorf("experiment: payload length %d out of [0,255]", c.PayloadLen)
	}
	if c.Seeds.Count < 0 {
		return fmt.Errorf("experiment: seed count %d < 0", c.Seeds.Count)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiment: workers %d < 0", c.Workers)
	}
	fc := c.FrameConfig()
	for i, name := range c.Receivers {
		if _, err := eval.ReceiverByName(fc, 1, name, nil); err != nil {
			return fmt.Errorf("experiment: receiver %d: %w", i, err)
		}
	}
	if c.Fault != "" {
		if _, err := fault.ParseSpec(c.Fault); err != nil {
			return fmt.Errorf("experiment: fault spec: %w", err)
		}
	}
	return nil
}

// validate checks the channel, with zero meaning "default".
func (ch Channel) validate() error {
	if ch.SF != 0 && (ch.SF < 7 || ch.SF > 12) {
		return fmt.Errorf("experiment: SF %d out of [7,12]", ch.SF)
	}
	switch ch.BandwidthHz {
	case 0, 125e3, 250e3, 500e3:
	default:
		return fmt.Errorf("experiment: bandwidth %g Hz (want 125e3, 250e3 or 500e3)", ch.BandwidthHz)
	}
	switch ch.OSR {
	case 0, 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("experiment: OSR %d (want a power of two in [1,16])", ch.OSR)
	}
	if _, err := ch.codingRate(); err != nil {
		return err
	}
	if ch.SyncWord < 0 || ch.SyncWord > 255 {
		return fmt.Errorf("experiment: sync word %d out of [0,255]", ch.SyncWord)
	}
	return nil
}

// codingRate parses the "4/5".."4/8" strings.
func (ch Channel) codingRate() (phy.CodingRate, error) {
	switch ch.CR {
	case "", "4/5":
		return phy.CR45, nil
	case "4/6":
		return phy.CR46, nil
	case "4/7":
		return phy.CR47, nil
	case "4/8":
		return phy.CR48, nil
	default:
		return 0, fmt.Errorf("experiment: coding rate %q (want 4/5, 4/6, 4/7 or 4/8)", ch.CR)
	}
}

// withDefaults resolves the zero fields to the paper configuration.
func (ch Channel) withDefaults() Channel {
	if ch.SF == 0 {
		ch.SF = 8
	}
	if ch.BandwidthHz == 0 {
		ch.BandwidthHz = 250e3
	}
	if ch.OSR == 0 {
		ch.OSR = 4
	}
	if ch.CR == "" {
		ch.CR = "4/5"
	}
	if ch.SyncWord == 0 {
		ch.SyncWord = 0x34
	}
	return ch
}

// FrameConfig converts the channel to the internal frame configuration.
// Call only on a validated config.
func (c *Config) FrameConfig() frame.Config {
	ch := c.Channel.withDefaults()
	cr, _ := ch.codingRate()
	return frame.Config{
		Chirp:    chirp.Params{SF: ch.SF, Bandwidth: ch.BandwidthHz, OSR: ch.OSR},
		PHY:      phy.Config{SF: ch.SF, CR: cr, HasCRC: true},
		SyncWord: byte(ch.SyncWord),
	}
}

// GatewayConfig converts the channel to the public cic.Config the
// cic-gatewayd RESUME handshake carries.
func (c *Config) GatewayConfig() cic.Config {
	ch := c.Channel.withDefaults()
	cr, _ := ch.codingRate()
	return cic.Config{
		SpreadingFactor: ch.SF,
		Bandwidth:       ch.BandwidthHz,
		Oversampling:    ch.OSR,
		CodingRate:      int(cr),
		PayloadCRC:      true,
		SyncWord:        byte(ch.SyncWord),
	}
}

// ReceiverNames resolves the receiver set, defaulting to the paper's
// four-receiver comparison.
func (c *Config) ReceiverNames() []string {
	if len(c.Receivers) > 0 {
		return c.Receivers
	}
	return eval.ReceiverNames()
}

// SeedCount resolves the per-point trial count (minimum 1).
func (c *Config) SeedCount() int {
	if c.Seeds.Count < 1 {
		return 1
	}
	return c.Seeds.Count
}

// Deployment materialises one deployment spec into a sim.Deployment.
// Call only on a validated config.
func (d DeploymentSpec) Deployment() sim.Deployment {
	dep, _ := sim.DeploymentByName(d.Base)
	if d.Nodes > 0 {
		dep.Nodes = d.Nodes
	}
	dep.MobilityDriftDB = d.MobilityDriftDB
	dep.ShadowSigmaDB = d.ShadowSigmaDB
	dep.DutyCycle = d.DutyCycle
	return dep
}

// figureID resolves the emitted figure id for a deployment point.
func (c *Config) figureID(d DeploymentSpec) string {
	if d.FigureID != "" {
		return d.FigureID
	}
	return c.Name + "_" + d.Base
}

// SHA is the config identity: the hex SHA-256 of the canonical (compact,
// field-ordered) JSON re-encoding. The journal stamps every line with it
// so a resume against an edited config fails instead of silently mixing
// incompatible trials.
func (c *Config) SHA() string {
	blob, err := json.Marshal(c)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail on it. Keep
		// the error path total anyway (lint: no panics).
		return "unmarshalable"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}
