// Package traffic generates the sensor-node workload of the paper's
// deployments: each of the 20 nodes transmits packets with exponentially
// distributed inter-arrival times (Poisson process, §7.1), with random
// payloads of a fixed size. The generator records ground truth so the
// evaluation can score receivers.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
)

// Transmission is one scheduled packet: ground truth for the evaluation.
type Transmission struct {
	Node        int    // transmitting node index
	StartSample int64  // absolute air-time start
	Payload     []byte // plaintext payload
}

// Config dimensions a Poisson workload.
type Config struct {
	Nodes         int     // number of nodes (paper: 20)
	PerNodeRate   float64 // λ, packets/second per node (aggregate R = Nodes·λ)
	Duration      float64 // seconds of traffic
	SampleRate    float64 // Hz, converts times to sample indices
	PayloadLen    int     // bytes per packet (paper: 28)
	PacketAirtime float64 // seconds a packet occupies (for half-duplex spacing)
}

// Validate checks the workload parameters.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("traffic: nodes %d < 1", c.Nodes)
	}
	if c.PerNodeRate < 0 {
		return fmt.Errorf("traffic: rate %g < 0", c.PerNodeRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("traffic: duration %g <= 0", c.Duration)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("traffic: sample rate %g <= 0", c.SampleRate)
	}
	if c.PayloadLen < 0 || c.PayloadLen > 255 {
		return fmt.Errorf("traffic: payload length %d out of [0,255]", c.PayloadLen)
	}
	return nil
}

// Generate draws a Poisson schedule. Each node draws exponential
// inter-arrival gaps with rate λ; a node that is still transmitting defers
// the next departure until its radio is free (half-duplex), matching real
// firmware queueing. The result is sorted by start time.
func Generate(cfg Config, rng *rand.Rand) ([]Transmission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var all []Transmission
	for node := 0; node < cfg.Nodes; node++ {
		t := 0.0
		busyUntil := 0.0
		for {
			if cfg.PerNodeRate <= 0 {
				break
			}
			t += rng.ExpFloat64() / cfg.PerNodeRate
			if t >= cfg.Duration {
				break
			}
			depart := t
			if depart < busyUntil {
				depart = busyUntil
			}
			if depart >= cfg.Duration {
				break
			}
			busyUntil = depart + cfg.PacketAirtime
			payload := make([]byte, cfg.PayloadLen)
			rng.Read(payload)
			all = append(all, Transmission{
				Node:        node,
				StartSample: int64(depart * cfg.SampleRate),
				Payload:     payload,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].StartSample < all[j].StartSample })
	return all, nil
}

// AggregateRate returns the offered load in packets/second.
func (c Config) AggregateRate() float64 { return float64(c.Nodes) * c.PerNodeRate }
