// Package traffic generates the sensor-node workload of the paper's
// deployments: each node transmits packets with exponentially distributed
// inter-arrival times (Poisson process, §7.1), with random payloads of a
// fixed size. The generator records ground truth so the evaluation can
// score receivers.
//
// Every node draws from an independent random sub-stream derived from the
// workload seed with a splitmix64 mixer (SubSeed), so one node's schedule
// is a pure function of (seed, node index): adding or removing nodes,
// reordering the generation loop, or sharding nodes across workers cannot
// perturb any other node's schedule. This is the determinism contract the
// experiment harness (internal/experiment) relies on for order-independent
// trial execution.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
)

// Transmission is one scheduled packet: ground truth for the evaluation.
type Transmission struct {
	Node        int    // transmitting node index
	Seq         int    // per-node packet index, from 0
	StartSample int64  // absolute air-time start
	Payload     []byte // plaintext payload
}

// Config dimensions a Poisson workload.
type Config struct {
	Nodes         int     // number of nodes (paper: 20)
	PerNodeRate   float64 // λ, packets/second per node (aggregate R = Nodes·λ)
	Duration      float64 // seconds of traffic
	SampleRate    float64 // Hz, converts times to sample indices
	PayloadLen    int     // bytes per packet (paper: 28)
	PacketAirtime float64 // seconds a packet occupies (for half-duplex spacing)

	// DutyCycle, when non-zero, enforces a regulatory duty-cycle cap
	// (EU 868 MHz: 0.01): after each packet the node stays silent until
	// its airtime amounts to at most this fraction of elapsed time, i.e.
	// the radio is blocked for Airtime/DutyCycle seconds per packet.
	// Zero means unregulated (the paper's US 915 MHz campaign).
	DutyCycle float64
}

// Validate checks the workload parameters.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("traffic: nodes %d < 1", c.Nodes)
	}
	if c.PerNodeRate < 0 {
		return fmt.Errorf("traffic: rate %g < 0", c.PerNodeRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("traffic: duration %g <= 0", c.Duration)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("traffic: sample rate %g <= 0", c.SampleRate)
	}
	if c.PayloadLen < 0 || c.PayloadLen > 255 {
		return fmt.Errorf("traffic: payload length %d out of [0,255]", c.PayloadLen)
	}
	if c.DutyCycle < 0 || c.DutyCycle > 1 {
		return fmt.Errorf("traffic: duty cycle %g out of [0,1]", c.DutyCycle)
	}
	return nil
}

// SubSeed derives an independent sub-stream seed from (seed, stream) with
// a splitmix64 finalizer. Distinct stream indices yield decorrelated
// rand.Source seeds, so per-node (and per-transmission) generators can be
// created on demand without sharing any stream state.
func SubSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Generate draws a Poisson schedule from the workload seed. Each node
// draws exponential inter-arrival gaps with rate λ from its own SubSeed
// sub-stream; a node that is still transmitting defers the next departure
// until its radio is free (half-duplex) — and, when DutyCycle is set,
// until the regulatory silence after the previous packet has elapsed —
// matching real firmware queueing. The result is sorted by start time
// (ties broken by node index, so the order is total and deterministic).
func Generate(cfg Config, seed int64) ([]Transmission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var all []Transmission
	for node := 0; node < cfg.Nodes; node++ {
		all = append(all, GenerateNode(cfg, seed, node)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].StartSample != all[j].StartSample {
			return all[i].StartSample < all[j].StartSample
		}
		return all[i].Node < all[j].Node
	})
	return all, nil
}

// GenerateNode draws one node's schedule from its private sub-stream.
// The caller is responsible for cfg validation (Generate does it once);
// the result is independent of every other node's schedule.
func GenerateNode(cfg Config, seed int64, node int) []Transmission {
	if cfg.PerNodeRate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(SubSeed(seed, int64(node))))
	blocked := cfg.PacketAirtime
	if cfg.DutyCycle > 0 {
		blocked = cfg.PacketAirtime / cfg.DutyCycle
	}
	var out []Transmission
	t := 0.0
	busyUntil := 0.0
	for seq := 0; ; seq++ {
		t += rng.ExpFloat64() / cfg.PerNodeRate
		if t >= cfg.Duration {
			break
		}
		depart := t
		if depart < busyUntil {
			depart = busyUntil
		}
		if depart >= cfg.Duration {
			break
		}
		busyUntil = depart + blocked
		payload := make([]byte, cfg.PayloadLen)
		rng.Read(payload)
		out = append(out, Transmission{
			Node:        node,
			Seq:         seq,
			StartSample: int64(depart * cfg.SampleRate),
			Payload:     payload,
		})
	}
	return out
}

// AggregateRate returns the offered load in packets/second.
func (c Config) AggregateRate() float64 { return float64(c.Nodes) * c.PerNodeRate }
