package traffic

import (
	"bytes"
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		Nodes:         20,
		PerNodeRate:   1.0,
		Duration:      10,
		SampleRate:    1e6,
		PayloadLen:    28,
		PacketAirtime: 0.045,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.PerNodeRate = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.PayloadLen = 256 },
		func(c *Config) { c.DutyCycle = -0.1 },
		func(c *Config) { c.DutyCycle = 1.5 },
	} {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestGeneratePoissonCount(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 50
	txs, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ≈ nodes·rate·duration = 1000; allow ±15%.
	want := cfg.AggregateRate() * cfg.Duration
	if f := float64(len(txs)); f < want*0.85 || f > want*1.15 {
		t.Errorf("generated %d packets, want ≈%.0f", len(txs), want)
	}
}

func TestGenerateSortedAndInRange(t *testing.T) {
	cfg := baseConfig()
	txs, _ := Generate(cfg, 2)
	maxStart := int64(cfg.Duration * cfg.SampleRate)
	seqs := map[int]int{}
	for i, tx := range txs {
		if i > 0 && tx.StartSample < txs[i-1].StartSample {
			t.Fatal("schedule not sorted")
		}
		if tx.StartSample < 0 || tx.StartSample >= maxStart {
			t.Fatalf("start %d out of range", tx.StartSample)
		}
		if len(tx.Payload) != cfg.PayloadLen {
			t.Fatal("payload length wrong")
		}
		if tx.Node < 0 || tx.Node >= cfg.Nodes {
			t.Fatal("node index out of range")
		}
		if tx.Seq != seqs[tx.Node] {
			t.Fatalf("node %d seq %d, want %d", tx.Node, tx.Seq, seqs[tx.Node])
		}
		seqs[tx.Node]++
	}
}

func TestGenerateHalfDuplexSpacing(t *testing.T) {
	cfg := baseConfig()
	cfg.PerNodeRate = 50 // heavy per-node load forces queueing
	cfg.Duration = 2
	txs, _ := Generate(cfg, 3)
	airSamples := int64(cfg.PacketAirtime * cfg.SampleRate)
	last := map[int]int64{}
	for _, tx := range txs {
		if prev, ok := last[tx.Node]; ok {
			if tx.StartSample-prev < airSamples {
				t.Fatalf("node %d packets %d apart, airtime %d", tx.Node, tx.StartSample-prev, airSamples)
			}
		}
		last[tx.Node] = tx.StartSample
	}
}

func TestGenerateDutyCycleSpacing(t *testing.T) {
	cfg := baseConfig()
	cfg.PerNodeRate = 50 // heavy load: the duty cycle is the binding constraint
	cfg.Duration = 5
	cfg.DutyCycle = 0.01 // EU-style 1%
	txs, err := Generate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) == 0 {
		t.Fatal("duty-cycled workload produced no packets")
	}
	minGap := int64(cfg.PacketAirtime / cfg.DutyCycle * cfg.SampleRate)
	last := map[int]int64{}
	for _, tx := range txs {
		if prev, ok := last[tx.Node]; ok {
			if gap := tx.StartSample - prev; gap < minGap {
				t.Fatalf("node %d packets %d apart, duty-cycle floor %d", tx.Node, gap, minGap)
			}
		}
		last[tx.Node] = tx.StartSample
	}
	// A saturated 1% duty cycle caps each node near duration·duty/airtime
	// packets; with 50 pkts/s offered per node the cap must bind.
	perNodeCap := cfg.Duration*cfg.DutyCycle/cfg.PacketAirtime + 1
	counts := map[int]int{}
	for _, tx := range txs {
		counts[tx.Node]++
	}
	for node, n := range counts {
		if float64(n) > perNodeCap {
			t.Errorf("node %d sent %d packets, duty-cycle cap ≈%.1f", node, n, perNodeCap)
		}
	}
}

func TestGenerateZeroRate(t *testing.T) {
	cfg := baseConfig()
	cfg.PerNodeRate = 0
	txs, err := Generate(cfg, 4)
	if err != nil || len(txs) != 0 {
		t.Errorf("zero rate produced %d packets, err %v", len(txs), err)
	}
}

func TestGenerateExponentialGaps(t *testing.T) {
	// Single node, measure the inter-arrival distribution's mean and CV.
	cfg := baseConfig()
	cfg.Nodes = 1
	cfg.PerNodeRate = 20
	cfg.Duration = 200
	cfg.PacketAirtime = 0 // pure Poisson, no queueing distortion
	txs, _ := Generate(cfg, 5)
	if len(txs) < 1000 {
		t.Fatalf("too few packets: %d", len(txs))
	}
	var gaps []float64
	for i := 1; i < len(txs); i++ {
		gaps = append(gaps, float64(txs[i].StartSample-txs[i-1].StartSample)/cfg.SampleRate)
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var variance float64
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= float64(len(gaps))
	cv := math.Sqrt(variance) / mean
	if math.Abs(mean-1.0/cfg.PerNodeRate) > 0.005 {
		t.Errorf("mean gap %g, want %g", mean, 1.0/cfg.PerNodeRate)
	}
	// Exponential distribution has CV = 1.
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("coefficient of variation %g, want ≈1 (exponential)", cv)
	}
}

// TestGenerateNodeIndependence is the determinism regression for the
// splitmix sub-stream contract: a node's schedule must be a pure function
// of (seed, node index) — unchanged by the total node count, by which
// other nodes exist, or by the order nodes are generated in.
func TestGenerateNodeIndependence(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 20
	full, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int][]Transmission{}
	for _, tx := range full {
		perNode[tx.Node] = append(perNode[tx.Node], tx)
	}

	// (1) Shrinking the population must not perturb the surviving nodes.
	small := cfg
	small.Nodes = 3
	smallTxs, err := Generate(small, 42)
	if err != nil {
		t.Fatal(err)
	}
	smallPerNode := map[int][]Transmission{}
	for _, tx := range smallTxs {
		smallPerNode[tx.Node] = append(smallPerNode[tx.Node], tx)
	}
	for node := 0; node < small.Nodes; node++ {
		if !sameSchedule(perNode[node], smallPerNode[node]) {
			t.Errorf("node %d schedule changed when population shrank 20 → 3", node)
		}
	}

	// (2) Generating a node in isolation (as a sharded worker would)
	// reproduces its slice of the full run exactly.
	for node := 0; node < cfg.Nodes; node += 7 {
		solo := GenerateNode(cfg, 42, node)
		if !sameSchedule(perNode[node], solo) {
			t.Errorf("node %d: GenerateNode disagrees with Generate", node)
		}
	}

	// (3) Same seed → identical output; different seed → different output.
	again, _ := Generate(cfg, 42)
	if !sameSchedule(full, again) {
		t.Error("same seed produced different schedules")
	}
	other, _ := Generate(cfg, 43)
	if sameSchedule(full, other) {
		t.Error("different seeds produced identical schedules")
	}
}

func sameSchedule(a, b []Transmission) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Seq != b[i].Seq ||
			a[i].StartSample != b[i].StartSample || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestSubSeedDecorrelated(t *testing.T) {
	seen := map[int64]int64{}
	for stream := int64(0); stream < 10000; stream++ {
		s := SubSeed(7, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision: streams %d and %d both → %d", prev, stream, s)
		}
		seen[s] = stream
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("SubSeed ignores the seed")
	}
}

func TestAggregateRate(t *testing.T) {
	cfg := baseConfig()
	if cfg.AggregateRate() != 20 {
		t.Errorf("aggregate rate %g", cfg.AggregateRate())
	}
}
