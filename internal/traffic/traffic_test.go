package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func baseConfig() Config {
	return Config{
		Nodes:         20,
		PerNodeRate:   1.0,
		Duration:      10,
		SampleRate:    1e6,
		PayloadLen:    28,
		PacketAirtime: 0.045,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.PerNodeRate = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.PayloadLen = 256 },
	} {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestGeneratePoissonCount(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 50
	rng := rand.New(rand.NewSource(1))
	txs, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ≈ nodes·rate·duration = 1000; allow ±15%.
	want := cfg.AggregateRate() * cfg.Duration
	if f := float64(len(txs)); f < want*0.85 || f > want*1.15 {
		t.Errorf("generated %d packets, want ≈%.0f", len(txs), want)
	}
}

func TestGenerateSortedAndInRange(t *testing.T) {
	cfg := baseConfig()
	rng := rand.New(rand.NewSource(2))
	txs, _ := Generate(cfg, rng)
	maxStart := int64(cfg.Duration * cfg.SampleRate)
	for i, tx := range txs {
		if i > 0 && tx.StartSample < txs[i-1].StartSample {
			t.Fatal("schedule not sorted")
		}
		if tx.StartSample < 0 || tx.StartSample >= maxStart {
			t.Fatalf("start %d out of range", tx.StartSample)
		}
		if len(tx.Payload) != cfg.PayloadLen {
			t.Fatal("payload length wrong")
		}
		if tx.Node < 0 || tx.Node >= cfg.Nodes {
			t.Fatal("node index out of range")
		}
	}
}

func TestGenerateHalfDuplexSpacing(t *testing.T) {
	cfg := baseConfig()
	cfg.PerNodeRate = 50 // heavy per-node load forces queueing
	cfg.Duration = 2
	rng := rand.New(rand.NewSource(3))
	txs, _ := Generate(cfg, rng)
	airSamples := int64(cfg.PacketAirtime * cfg.SampleRate)
	last := map[int]int64{}
	for _, tx := range txs {
		if prev, ok := last[tx.Node]; ok {
			if tx.StartSample-prev < airSamples {
				t.Fatalf("node %d packets %d apart, airtime %d", tx.Node, tx.StartSample-prev, airSamples)
			}
		}
		last[tx.Node] = tx.StartSample
	}
}

func TestGenerateZeroRate(t *testing.T) {
	cfg := baseConfig()
	cfg.PerNodeRate = 0
	txs, err := Generate(cfg, rand.New(rand.NewSource(4)))
	if err != nil || len(txs) != 0 {
		t.Errorf("zero rate produced %d packets, err %v", len(txs), err)
	}
}

func TestGenerateExponentialGaps(t *testing.T) {
	// Single node, measure the inter-arrival distribution's mean and CV.
	cfg := baseConfig()
	cfg.Nodes = 1
	cfg.PerNodeRate = 20
	cfg.Duration = 200
	cfg.PacketAirtime = 0 // pure Poisson, no queueing distortion
	txs, _ := Generate(cfg, rand.New(rand.NewSource(5)))
	if len(txs) < 1000 {
		t.Fatalf("too few packets: %d", len(txs))
	}
	var gaps []float64
	for i := 1; i < len(txs); i++ {
		gaps = append(gaps, float64(txs[i].StartSample-txs[i-1].StartSample)/cfg.SampleRate)
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var variance float64
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= float64(len(gaps))
	cv := math.Sqrt(variance) / mean
	if math.Abs(mean-1.0/cfg.PerNodeRate) > 0.005 {
		t.Errorf("mean gap %g, want %g", mean, 1.0/cfg.PerNodeRate)
	}
	// Exponential distribution has CV = 1.
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("coefficient of variation %g, want ≈1 (exponential)", cv)
	}
}

func TestAggregateRate(t *testing.T) {
	cfg := baseConfig()
	if cfg.AggregateRate() != 20 {
		t.Errorf("aggregate rate %g", cfg.AggregateRate())
	}
}
