// Package sim reproduces the paper's deployment campaign in simulation:
// the four test deployments D1–D4 (§7.1, Figs 22–27), Poisson traffic
// generation across 20 nodes, rendering of the superposed air, and scoring
// of receiver output against ground truth.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"cic/internal/channel"
	"cic/internal/frame"
	"cic/internal/rx"
	"cic/internal/traffic"
)

// Deployment captures the SNR regime and propagation character of one of
// the paper's four test deployments. SNR ranges follow Fig 27.
type Deployment struct {
	Name       string
	Label      string
	Nodes      int
	SNRMinDB   float64
	SNRMaxDB   float64
	FadeDepth  float64 // in-packet amplitude fluctuation (D4: pedestrians/traffic)
	AreaMeters float64 // deployment extent, for the Fig 22–26 maps
	LoS        bool
}

// The four deployments of §7.1.
var (
	D1 = Deployment{
		Name: "D1", Label: "Small Indoor Space — High SNR, LoS",
		Nodes: 20, SNRMinDB: 30, SNRMaxDB: 40, AreaMeters: 30, LoS: true,
	}
	D2 = Deployment{
		Name: "D2", Label: "Small Floor Space — High SNR, NLoS",
		Nodes: 20, SNRMinDB: 28, SNRMaxDB: 40, FadeDepth: 0.1, AreaMeters: 60,
	}
	D3 = Deployment{
		Name: "D3", Label: "Large Floor Space — Low SNR, NLoS",
		Nodes: 20, SNRMinDB: 5, SNRMaxDB: 30, FadeDepth: 0.15, AreaMeters: 150,
	}
	D4 = Deployment{
		Name: "D4", Label: "Outdoor Wide Area — Sub-Noise SNR, NLoS",
		Nodes: 20, SNRMinDB: -5, SNRMaxDB: 10, FadeDepth: 0.3, AreaMeters: 1500,
	}
)

// Deployments returns D1..D4 in order.
func Deployments() []Deployment { return []Deployment{D1, D2, D3, D4} }

// DeploymentByName looks a deployment up by its short name ("D1".."D4").
func DeploymentByName(name string) (Deployment, error) {
	for _, d := range Deployments() {
		if d.Name == name {
			return d, nil
		}
	}
	return Deployment{}, fmt.Errorf("sim: unknown deployment %q", name)
}

// Node is one sensor device's receive-side character at the gateway.
type Node struct {
	ID    int
	SNRdB float64
	CFOHz float64
	X, Y  float64 // position in meters (gateway at origin), for the maps
}

// Network instantiates a deployment: fixed per-node SNRs (path loss does
// not change between packets) and per-device CFOs.
type Network struct {
	Cfg   frame.Config
	Dep   Deployment
	Nodes []Node
}

// CrystalPPM is the crystal tolerance used to draw device CFOs (±ppm at
// the 915 MHz US ISM carrier), matching hobbyist-grade LoRa modules.
const CrystalPPM = 10

// CarrierHz is the assumed RF carrier for CFO generation.
const CarrierHz = 915e6

// NewNetwork draws the per-node parameters for a deployment.
func NewNetwork(cfg frame.Config, dep Deployment, seed int64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dep.Nodes < 1 {
		return nil, fmt.Errorf("sim: deployment %q has no nodes", dep.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	nw := &Network{Cfg: cfg, Dep: dep}
	for i := 0; i < dep.Nodes; i++ {
		ang := rng.Float64() * 2 * math.Pi
		// Area-uniform radius so the Fig 22–26 maps look plausible.
		rad := dep.AreaMeters / 2 * math.Sqrt(rng.Float64())
		nw.Nodes = append(nw.Nodes, Node{
			ID:    i,
			SNRdB: dep.SNRMinDB + rng.Float64()*(dep.SNRMaxDB-dep.SNRMinDB),
			CFOHz: channel.RandomCFO(rng, CrystalPPM, CarrierHz),
			X:     rad * math.Cos(ang),
			Y:     rad * math.Sin(ang),
		})
	}
	return nw, nil
}

// Run is one rendered experiment: a sample source plus ground truth.
type Run struct {
	Cfg    frame.Config
	Source rx.SampleSource
	Truth  []traffic.Transmission
}

// BuildRun generates Poisson traffic at the aggregate rate (packets/second
// network-wide) for the duration, modulates every packet with its node's
// impairments, and renders the air with unit-in-band-power AWGN.
func (nw *Network) BuildRun(aggregateRate, duration float64, payloadLen int, seed int64) (*Run, error) {
	mod, err := frame.NewModulator(nw.Cfg)
	if err != nil {
		return nil, err
	}
	airtime := float64(nw.Cfg.PacketSampleCount(payloadLen)) / nw.Cfg.Chirp.SampleRate()
	tcfg := traffic.Config{
		Nodes:         nw.Dep.Nodes,
		PerNodeRate:   aggregateRate / float64(nw.Dep.Nodes),
		Duration:      duration,
		SampleRate:    nw.Cfg.Chirp.SampleRate(),
		PayloadLen:    payloadLen,
		PacketAirtime: airtime,
	}
	rng := rand.New(rand.NewSource(seed))
	txs, err := traffic.Generate(tcfg, rng)
	if err != nil {
		return nil, err
	}
	ems := make([]channel.Emission, 0, len(txs))
	for _, tx := range txs {
		wave, _, err := mod.Modulate(tx.Payload)
		if err != nil {
			return nil, err
		}
		node := nw.Nodes[tx.Node]
		imp := channel.Impairments{
			Amplitude:    channel.AmplitudeForSNR(node.SNRdB),
			CFOHz:        node.CFOHz,
			InitialPhase: rng.Float64() * 2 * math.Pi,
			SampleRate:   nw.Cfg.Chirp.SampleRate(),
		}
		if nw.Dep.FadeDepth > 0 {
			imp.FadeDepth = nw.Dep.FadeDepth
			imp.FadePeriod = 0.05 + rng.Float64()*0.2
			imp.FadePhase = rng.Float64() * 2 * math.Pi
		}
		ems = append(ems, channel.Emission{
			Start:   tx.StartSample,
			Samples: channel.Apply(wave, imp),
		})
	}
	renderer := channel.NewRenderer(ems, nw.Cfg.Chirp.OSR, seed^0x5EED)
	return &Run{
		Cfg:    nw.Cfg,
		Source: runSource{rx.SourceFromRenderer(renderer), 0, int64(duration*nw.Cfg.Chirp.SampleRate()) + int64(nw.Cfg.PacketSampleCount(payloadLen))},
		Truth:  txs,
	}, nil
}

// runSource pins the span to the experiment duration (plus one packet of
// tail) even when the emission list is sparse or empty.
type runSource struct {
	rx.SampleSource
	start, end int64
}

func (s runSource) Span() (int64, int64) { return s.start, s.end }
