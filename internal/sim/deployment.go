// Package sim reproduces the paper's deployment campaign in simulation:
// the four test deployments D1–D4 (§7.1, Figs 22–27), Poisson traffic
// generation across the node population, rendering of the superposed air,
// and scoring of receiver output against ground truth. Beyond the paper,
// deployments carry parameterized extensions for the city-scale experiment
// harness (internal/experiment): node-mobility power drift, log-normal
// urban shadowing, and regulatory duty-cycle caps — all zero (disabled) in
// the canonical D1–D4 so the paper baselines are untouched.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"cic/internal/channel"
	"cic/internal/frame"
	"cic/internal/rx"
	"cic/internal/traffic"
)

// Deployment captures the SNR regime and propagation character of one of
// the paper's four test deployments. SNR ranges follow Fig 27. The
// extension fields (MobilityDriftDB, ShadowSigmaDB, DutyCycle) default to
// zero = disabled; internal/experiment sets them from ExperimentConfig
// deployment overrides.
type Deployment struct {
	Name       string
	Label      string
	Nodes      int
	SNRMinDB   float64
	SNRMaxDB   float64
	FadeDepth  float64 // in-packet amplitude fluctuation (D4: pedestrians/traffic)
	AreaMeters float64 // deployment extent, for the Fig 22–26 maps
	LoS        bool

	// MobilityDriftDB is the per-packet received-power drift σ (dB) a
	// moving node exhibits between transmissions: each packet's SNR is
	// the node's mean plus a zero-mean Gaussian of this σ, drawn from
	// the transmission's own sub-stream. Zero = static nodes (paper).
	MobilityDriftDB float64
	// ShadowSigmaDB adds log-normal urban shadowing to each node's mean
	// SNR draw: a zero-mean Gaussian of this σ (dB) per node, from a
	// sub-stream separate from the base draws so enabling shadowing
	// cannot shift the canonical node parameters. Zero = no shadowing.
	ShadowSigmaDB float64
	// DutyCycle caps each node's transmit time as a fraction of wall
	// time (EU 868 MHz: 0.01), enforced by the traffic generator.
	// Zero = unregulated (the paper's US 915 MHz campaign).
	DutyCycle float64
}

// The four deployments of §7.1.
var (
	D1 = Deployment{
		Name: "D1", Label: "Small Indoor Space — High SNR, LoS",
		Nodes: 20, SNRMinDB: 30, SNRMaxDB: 40, AreaMeters: 30, LoS: true,
	}
	D2 = Deployment{
		Name: "D2", Label: "Small Floor Space — High SNR, NLoS",
		Nodes: 20, SNRMinDB: 28, SNRMaxDB: 40, FadeDepth: 0.1, AreaMeters: 60,
	}
	D3 = Deployment{
		Name: "D3", Label: "Large Floor Space — Low SNR, NLoS",
		Nodes: 20, SNRMinDB: 5, SNRMaxDB: 30, FadeDepth: 0.15, AreaMeters: 150,
	}
	D4 = Deployment{
		Name: "D4", Label: "Outdoor Wide Area — Sub-Noise SNR, NLoS",
		Nodes: 20, SNRMinDB: -5, SNRMaxDB: 10, FadeDepth: 0.3, AreaMeters: 1500,
	}
)

// Deployments returns D1..D4 in order.
func Deployments() []Deployment { return []Deployment{D1, D2, D3, D4} }

// DeploymentByName looks a deployment up by its short name ("D1".."D4").
func DeploymentByName(name string) (Deployment, error) {
	for _, d := range Deployments() {
		if d.Name == name {
			return d, nil
		}
	}
	return Deployment{}, fmt.Errorf("sim: unknown deployment %q", name)
}

// Node is one sensor device's receive-side character at the gateway.
type Node struct {
	ID    int
	SNRdB float64
	CFOHz float64
	X, Y  float64 // position in meters (gateway at origin), for the maps
}

// Network instantiates a deployment: fixed per-node SNRs (path loss does
// not change between packets) and per-device CFOs.
type Network struct {
	Cfg   frame.Config
	Dep   Deployment
	Nodes []Node
}

// CrystalPPM is the crystal tolerance used to draw device CFOs (±ppm at
// the 915 MHz US ISM carrier), matching hobbyist-grade LoRa modules.
const CrystalPPM = 10

// CarrierHz is the assumed RF carrier for CFO generation.
const CarrierHz = 915e6

// Sub-stream salts: distinct random-stream families derived from the
// network/run seed via traffic.SubSeed. Keeping each family on its own
// salt means enabling one extension (shadowing, mobility) cannot perturb
// the draws of another — the golden-distribution tests pin this.
const (
	shadowSalt     = 0x53484457 // "SHDW": per-node shadowing draws
	impairmentSalt = 0x494D5052 // "IMPR": per-transmission channel impairments
)

// NewNetwork draws the per-node parameters for a deployment.
func NewNetwork(cfg frame.Config, dep Deployment, seed int64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dep.Nodes < 1 {
		return nil, fmt.Errorf("sim: deployment %q has no nodes", dep.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	nw := &Network{Cfg: cfg, Dep: dep}
	for i := 0; i < dep.Nodes; i++ {
		ang := rng.Float64() * 2 * math.Pi
		// Area-uniform radius so the Fig 22–26 maps look plausible.
		rad := dep.AreaMeters / 2 * math.Sqrt(rng.Float64())
		snr := dep.SNRMinDB + rng.Float64()*(dep.SNRMaxDB-dep.SNRMinDB)
		if dep.ShadowSigmaDB > 0 {
			// Urban shadowing comes from its own sub-stream so the base
			// draws above stay byte-identical with shadowing off.
			srng := rand.New(rand.NewSource(traffic.SubSeed(seed^shadowSalt, int64(i))))
			snr += srng.NormFloat64() * dep.ShadowSigmaDB
		}
		nw.Nodes = append(nw.Nodes, Node{
			ID:    i,
			SNRdB: snr,
			CFOHz: channel.RandomCFO(rng, CrystalPPM, CarrierHz),
			X:     rad * math.Cos(ang),
			Y:     rad * math.Sin(ang),
		})
	}
	return nw, nil
}

// Run is one rendered experiment: a sample source plus ground truth.
type Run struct {
	Cfg    frame.Config
	Source rx.SampleSource
	Truth  []traffic.Transmission
}

// BuildRun generates Poisson traffic at the aggregate rate (packets/second
// network-wide) for the duration, modulates every packet with its node's
// impairments, and renders the air with unit-in-band-power AWGN.
//
// Every random draw comes from a sub-stream derived from the run seed:
// node schedules from traffic's per-node streams, and each transmission's
// channel impairments (initial phase, fade, mobility drift) from a
// per-(node, seq) stream. A transmission's rendering is therefore a pure
// function of (network, seed, node, seq) — independent of how many other
// nodes transmit or in which order the emission list is assembled.
func (nw *Network) BuildRun(aggregateRate, duration float64, payloadLen int, seed int64) (*Run, error) {
	mod, err := frame.NewModulator(nw.Cfg)
	if err != nil {
		return nil, err
	}
	airtime := float64(nw.Cfg.PacketSampleCount(payloadLen)) / nw.Cfg.Chirp.SampleRate()
	tcfg := traffic.Config{
		Nodes:         nw.Dep.Nodes,
		PerNodeRate:   aggregateRate / float64(nw.Dep.Nodes),
		Duration:      duration,
		SampleRate:    nw.Cfg.Chirp.SampleRate(),
		PayloadLen:    payloadLen,
		PacketAirtime: airtime,
		DutyCycle:     nw.Dep.DutyCycle,
	}
	txs, err := traffic.Generate(tcfg, seed)
	if err != nil {
		return nil, err
	}
	ems := make([]channel.Emission, 0, len(txs))
	for _, tx := range txs {
		wave, _, err := mod.Modulate(tx.Payload)
		if err != nil {
			return nil, err
		}
		node := nw.Nodes[tx.Node]
		// Per-transmission impairment stream, keyed on (node, seq).
		txStream := traffic.SubSeed(int64(tx.Node)<<20, int64(tx.Seq))
		rng := rand.New(rand.NewSource(traffic.SubSeed(seed^impairmentSalt, txStream)))
		snr := node.SNRdB
		if nw.Dep.MobilityDriftDB > 0 {
			snr += rng.NormFloat64() * nw.Dep.MobilityDriftDB
		}
		imp := channel.Impairments{
			Amplitude:    channel.AmplitudeForSNR(snr),
			CFOHz:        node.CFOHz,
			InitialPhase: rng.Float64() * 2 * math.Pi,
			SampleRate:   nw.Cfg.Chirp.SampleRate(),
		}
		if nw.Dep.FadeDepth > 0 {
			imp.FadeDepth = nw.Dep.FadeDepth
			imp.FadePeriod = 0.05 + rng.Float64()*0.2
			imp.FadePhase = rng.Float64() * 2 * math.Pi
		}
		ems = append(ems, channel.Emission{
			Start:   tx.StartSample,
			Samples: channel.Apply(wave, imp),
		})
	}
	renderer := channel.NewRenderer(ems, nw.Cfg.Chirp.OSR, seed^0x5EED)
	return &Run{
		Cfg:    nw.Cfg,
		Source: runSource{rx.SourceFromRenderer(renderer), 0, int64(duration*nw.Cfg.Chirp.SampleRate()) + int64(nw.Cfg.PacketSampleCount(payloadLen))},
		Truth:  txs,
	}, nil
}

// runSource pins the span to the experiment duration (plus one packet of
// tail) even when the emission list is sparse or empty.
type runSource struct {
	rx.SampleSource
	start, end int64
}

func (s runSource) Span() (int64, int64) { return s.start, s.end }
