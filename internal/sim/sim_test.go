package sim

import (
	"math"
	"testing"

	"cic/internal/chirp"
	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/rx"
	"cic/internal/traffic"
)

func testCfg() frame.Config {
	return frame.Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

func TestDeploymentLookup(t *testing.T) {
	for _, name := range []string{"D1", "D2", "D3", "D4"} {
		d, err := DeploymentByName(name)
		if err != nil || d.Name != name {
			t.Errorf("lookup %s: %v", name, err)
		}
	}
	if _, err := DeploymentByName("D9"); err == nil {
		t.Error("bogus deployment accepted")
	}
	if len(Deployments()) != 4 {
		t.Error("want 4 deployments")
	}
}

func TestNetworkNodeParameters(t *testing.T) {
	for _, dep := range Deployments() {
		nw, err := NewNetwork(testCfg(), dep, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(nw.Nodes) != dep.Nodes {
			t.Fatalf("%s: %d nodes", dep.Name, len(nw.Nodes))
		}
		for _, n := range nw.Nodes {
			if n.SNRdB < dep.SNRMinDB || n.SNRdB > dep.SNRMaxDB {
				t.Errorf("%s node %d SNR %g outside [%g,%g]", dep.Name, n.ID, n.SNRdB, dep.SNRMinDB, dep.SNRMaxDB)
			}
			if math.Abs(n.CFOHz) > CrystalPPM*1e-6*CarrierHz {
				t.Errorf("%s node %d CFO %g out of tolerance", dep.Name, n.ID, n.CFOHz)
			}
			if r := math.Hypot(n.X, n.Y); r > dep.AreaMeters/2+1e-9 {
				t.Errorf("%s node %d outside area", dep.Name, n.ID)
			}
		}
	}
}

func TestNetworkDeterministic(t *testing.T) {
	a, _ := NewNetwork(testCfg(), D3, 42)
	b, _ := NewNetwork(testCfg(), D3, 42)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("same seed produced different networks")
		}
	}
	c, _ := NewNetwork(testCfg(), D3, 43)
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].SNRdB == c.Nodes[i].SNRdB {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Error("different seeds produced identical networks")
	}
}

func TestBuildRunGeometry(t *testing.T) {
	nw, _ := NewNetwork(testCfg(), D1, 2)
	run, err := nw.BuildRun(20, 1.0, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Truth) == 0 {
		t.Fatal("no traffic generated")
	}
	start, end := run.Source.Span()
	if start != 0 || end <= int64(testCfg().Chirp.SampleRate()) {
		t.Errorf("span [%d,%d)", start, end)
	}
	// All truth packets inside the duration.
	for _, tx := range run.Truth {
		if tx.StartSample < 0 || tx.StartSample > int64(1.0*testCfg().Chirp.SampleRate()) {
			t.Errorf("tx at %d outside run", tx.StartSample)
		}
	}
}

// TestEndToEndD1LightLoad: at light load in the easiest deployment, CIC
// should decode nearly every packet.
func TestEndToEndD1LightLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := testCfg()
	nw, _ := NewNetwork(cfg, D1, 5)
	run, err := nw.BuildRun(5, 2.0, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	recv, _ := core.NewReceiver(cfg, core.Options{}, rx.DetectorOptions{}, 0)
	results, err := recv.Receive(run.Source)
	if err != nil {
		t.Fatal(err)
	}
	score := ScoreDecodes(run, results, 2.0)
	if score.Offered < 5 {
		t.Fatalf("only %d packets offered", score.Offered)
	}
	if score.Decoded < score.Offered*7/10 {
		t.Errorf("decoded %d of %d at light load", score.Decoded, score.Offered)
	}
	if score.False > 0 {
		t.Errorf("%d false decodes", score.False)
	}
}

func TestScoreMath(t *testing.T) {
	s := Score{Offered: 10, Detected: 8, Decoded: 5, Duration: 2}
	if s.OfferedRate() != 5 || s.Throughput() != 2.5 || s.DetectionRate() != 0.8 {
		t.Errorf("score math wrong: %+v", s)
	}
	var zero Score
	if zero.OfferedRate() != 0 || zero.Throughput() != 0 || zero.DetectionRate() != 0 {
		t.Error("zero score must not divide by zero")
	}
}

func TestScoreDetections(t *testing.T) {
	cfg := testCfg()
	run := &Run{Cfg: cfg}
	run.Truth = []traffic.Transmission{
		{StartSample: 1000, Payload: []byte{1}},
		{StartSample: 50000, Payload: []byte{2}},
	}
	pkts := []*rx.Packet{{Start: 1003}, {Start: 90000}}
	s := ScoreDetections(run, pkts, 1)
	if s.Detected != 1 || s.False != 1 || s.Offered != 2 {
		t.Errorf("%+v", s)
	}
}

func TestScoreDecodesMatching(t *testing.T) {
	cfg := testCfg()
	run := &Run{Cfg: cfg}
	run.Truth = []traffic.Transmission{{StartSample: 1000, Payload: []byte{0xAB, 0xCD}}}
	good := rx.Decoded{
		Packet:   &rx.Packet{Start: 1001},
		HeaderOK: true, CRCOK: true,
		Payload: []byte{0xAB, 0xCD},
	}
	badPayload := good
	badPayload.Payload = []byte{0xFF, 0xFF}
	farAway := good
	farAway.Packet = &rx.Packet{Start: 99999}

	if s := ScoreDecodes(run, []rx.Decoded{good}, 1); s.Decoded != 1 || s.Detected != 1 {
		t.Errorf("good: %+v", s)
	}
	if s := ScoreDecodes(run, []rx.Decoded{badPayload}, 1); s.Decoded != 0 || s.Detected != 1 {
		t.Errorf("bad payload: %+v", s)
	}
	if s := ScoreDecodes(run, []rx.Decoded{farAway}, 1); s.Decoded != 0 || s.False != 1 {
		t.Errorf("far away: %+v", s)
	}
}
