package sim

import (
	"math"
	"testing"
)

// Golden received-power distributions for D1–D4 at seed 1. These pin the
// exact node draws of NewNetwork so geometry refactors (mobility, fading,
// shadowing extensions) cannot silently shift the paper baselines: any
// change to the draw order or formula trips the exact-value checks below.
//
// Regenerate by printing the same statistics from NewNetwork(testCfg(),
// dep, 1) — but only when a baseline shift is intentional and called out
// in the commit message.
var goldenNetworks = []struct {
	name     string
	meanSNR  float64 // mean node SNR, dB
	meanRad  float64 // mean node distance from gateway, m
	snrBins  []int   // 5 dB histogram over [SNRMinDB, SNRMaxDB]
	node0SNR float64
	node0CFO float64
}{
	{"D1", 35.719942114, 10.436621292, []int{6, 14}, 36.645600532, -1139.830374478},
	{"D2", 34.863930537, 20.873242583, []int{6, 10, 4}, 35.974720639, -1139.830374478},
	{"D3", 19.299855285, 52.183106458, []int{2, 4, 4, 5, 5}, 21.614001330, -1139.830374478},
	{"D4", 3.579913171, 521.831064576, []int{5, 7, 8}, 4.968400798, -1139.830374478},
}

func TestGoldenDeploymentDistributions(t *testing.T) {
	const tol = 1e-6
	for _, want := range goldenNetworks {
		dep, err := DeploymentByName(want.name)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := NewNetwork(testCfg(), dep, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sumSNR, sumRad float64
		bins := make([]int, int(math.Ceil((dep.SNRMaxDB-dep.SNRMinDB)/5)))
		for _, n := range nw.Nodes {
			sumSNR += n.SNRdB
			sumRad += math.Hypot(n.X, n.Y)
			if b := int((n.SNRdB - dep.SNRMinDB) / 5); b >= 0 && b < len(bins) {
				bins[b]++
			}
		}
		n := float64(len(nw.Nodes))
		if got := sumSNR / n; math.Abs(got-want.meanSNR) > tol {
			t.Errorf("%s mean SNR %.9f, golden %.9f", want.name, got, want.meanSNR)
		}
		if got := sumRad / n; math.Abs(got-want.meanRad) > tol {
			t.Errorf("%s mean radius %.9f, golden %.9f", want.name, got, want.meanRad)
		}
		if len(bins) != len(want.snrBins) {
			t.Fatalf("%s histogram has %d bins, golden %d", want.name, len(bins), len(want.snrBins))
		}
		for i := range bins {
			if bins[i] != want.snrBins[i] {
				t.Errorf("%s SNR histogram %v, golden %v", want.name, bins, want.snrBins)
				break
			}
		}
		if got := nw.Nodes[0].SNRdB; math.Abs(got-want.node0SNR) > tol {
			t.Errorf("%s node 0 SNR %.9f, golden %.9f", want.name, got, want.node0SNR)
		}
		if got := nw.Nodes[0].CFOHz; math.Abs(got-want.node0CFO) > tol {
			t.Errorf("%s node 0 CFO %.9f, golden %.9f", want.name, got, want.node0CFO)
		}
	}
}

// TestShadowingLeavesBaseDrawsIntact pins the sub-stream separation
// contract: enabling ShadowSigmaDB perturbs only the SNRs (via its own
// SubSeed stream), never the positions or CFOs drawn from the base rng.
func TestShadowingLeavesBaseDrawsIntact(t *testing.T) {
	base, err := NewNetwork(testCfg(), D3, 1)
	if err != nil {
		t.Fatal(err)
	}
	shadowed := D3
	shadowed.ShadowSigmaDB = 6
	got, err := NewNetwork(testCfg(), shadowed, 1)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range base.Nodes {
		b, g := base.Nodes[i], got.Nodes[i]
		if b.X != g.X || b.Y != g.Y || b.CFOHz != g.CFOHz {
			t.Fatalf("node %d position/CFO changed under shadowing", i)
		}
		if b.SNRdB != g.SNRdB {
			changed = true
		}
	}
	if !changed {
		t.Error("shadowing changed no SNRs")
	}
}

// TestMobilityDriftPerTransmission checks the mobility extension draws a
// different received power per packet while leaving the canonical zero-
// drift deployments' schedules and truth untouched.
func TestMobilityDriftPerTransmission(t *testing.T) {
	mobile := D1
	mobile.MobilityDriftDB = 3
	nwStatic, err := NewNetwork(testCfg(), D1, 1)
	if err != nil {
		t.Fatal(err)
	}
	nwMobile, err := NewNetwork(testCfg(), mobile, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := nwStatic.BuildRun(40, 1.0, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := nwMobile.BuildRun(40, 1.0, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Mobility must not alter the traffic schedule, only the channel.
	if len(rs.Truth) != len(rm.Truth) {
		t.Fatalf("mobility changed truth length: %d vs %d", len(rs.Truth), len(rm.Truth))
	}
	for i := range rs.Truth {
		if rs.Truth[i].StartSample != rm.Truth[i].StartSample || rs.Truth[i].Node != rm.Truth[i].Node {
			t.Fatal("mobility changed the traffic schedule")
		}
	}
	// But the rendered air must differ (per-packet amplitude drift).
	if len(rs.Truth) == 0 {
		t.Fatal("no traffic generated")
	}
	off := rs.Truth[0].StartSample
	a := make([]complex128, 256)
	b := make([]complex128, 256)
	rs.Source.Read(a, off)
	rm.Source.Read(b, off)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("mobility drift left the rendered air byte-identical")
	}
}
