package sim

import (
	"testing"

	"cic/internal/rx"
	"cic/internal/traffic"
)

// TestBuildRunDeterministic: identical seeds give byte-identical airs and
// truth; different seeds differ.
func TestBuildRunDeterministic(t *testing.T) {
	cfg := testCfg()
	nw, err := NewNetwork(cfg, D2, 3)
	if err != nil {
		t.Fatal(err)
	}
	runA, err := nw.BuildRun(20, 0.5, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := nw.BuildRun(20, 0.5, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(runA.Truth) != len(runB.Truth) {
		t.Fatal("truth lengths differ for same seed")
	}
	bufA := make([]complex128, 4096)
	bufB := make([]complex128, 4096)
	runA.Source.Read(bufA, 10000)
	runB.Source.Read(bufB, 10000)
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatal("air differs for same seed")
		}
	}
	runC, err := nw.BuildRun(20, 0.5, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	runC.Source.Read(bufB, 10000)
	same := 0
	for i := range bufA {
		if bufA[i] == bufB[i] {
			same++
		}
	}
	if same == len(bufA) {
		t.Error("different seeds produced identical air")
	}
}

// TestD4FadeApplied: the D4 network's emissions carry amplitude fade, so a
// packet's envelope varies within the packet.
func TestD4FadeApplied(t *testing.T) {
	cfg := testCfg()
	nw, err := NewNetwork(cfg, D4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Dep.FadeDepth == 0 {
		t.Fatal("D4 must carry fade depth")
	}
	if D1.FadeDepth != 0 {
		t.Error("D1 must not fade")
	}
}

// TestScoreDecodesClaimsEachTruthOnce: two detections near the same truth
// packet must not double-count.
func TestScoreDecodesClaimsEachTruthOnce(t *testing.T) {
	cfg := testCfg()
	run := &Run{Cfg: cfg}
	run.Truth = append(run.Truth, run.Truth...)
	run.Truth = run.Truth[:0]
	run.Truth = append(run.Truth, truthAt(1000, []byte{9}))
	dup := rx.Decoded{
		Packet:   &rx.Packet{Start: 1001},
		HeaderOK: true, CRCOK: true, Payload: []byte{9},
	}
	dup2 := dup
	dup2.Packet = &rx.Packet{Start: 999}
	s := ScoreDecodes(run, []rx.Decoded{dup, dup2}, 1)
	if s.Decoded != 1 {
		t.Errorf("decoded = %d, want 1 (no double counting)", s.Decoded)
	}
}

// TestScoreDetectionsClaimsEachPacketOnce: one detection cannot satisfy two
// truth packets.
func TestScoreDetectionsClaimsEachPacketOnce(t *testing.T) {
	cfg := testCfg()
	run := &Run{Cfg: cfg}
	run.Truth = append(run.Truth, truthAt(1000, []byte{1}), truthAt(1100, []byte{2}))
	pkts := []*rx.Packet{{Start: 1050}}
	s := ScoreDetections(run, pkts, 1)
	if s.Detected != 1 {
		t.Errorf("detected = %d, want 1", s.Detected)
	}
}

func truthAt(at int64, payload []byte) traffic.Transmission {
	return traffic.Transmission{StartSample: at, Payload: payload}
}
