package sim

import (
	"bytes"

	"cic/internal/rx"
)

// Score summarises a receiver's performance on one run.
type Score struct {
	Offered  int // packets transmitted
	Detected int // detections matched to a real transmission
	Decoded  int // packets whose every payload bit was recovered
	False    int // detections/decodes not matching any transmission

	Duration float64 // seconds
}

// OfferedRate returns offered packets per second.
func (s Score) OfferedRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Offered) / s.Duration
}

// Throughput returns correctly decoded packets per second (the paper's
// network-capacity metric: all bits correct).
func (s Score) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Decoded) / s.Duration
}

// DetectionRate returns the fraction of transmitted packets whose preamble
// was detected (Figs 32–35).
func (s Score) DetectionRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Offered)
}

// matchWindow is how far (in samples) a detection may sit from the true
// packet start and still count, expressed in symbol fractions.
func matchWindow(run *Run) int64 {
	return int64(run.Cfg.Chirp.SamplesPerSymbol() / 2)
}

// ScoreDecodes scores end-to-end decoding: a truth packet counts as decoded
// when some result within half a symbol of its start reproduces its payload
// exactly and passes the CRC. Each result can claim at most one truth
// packet and vice versa.
func ScoreDecodes(run *Run, results []rx.Decoded, duration float64) Score {
	s := Score{Offered: len(run.Truth), Duration: duration}
	win := matchWindow(run)
	claimed := make([]bool, len(results))
	for _, tx := range run.Truth {
		matchedDetect := false
		matchedDecode := false
		for i, res := range results {
			if claimed[i] {
				continue
			}
			d := res.Packet.Start - tx.StartSample
			if d < -win || d > win {
				continue
			}
			matchedDetect = true
			if res.OK() && bytes.Equal(res.Payload, tx.Payload) {
				claimed[i] = true
				matchedDecode = true
				break
			}
		}
		if matchedDetect {
			s.Detected++
		}
		if matchedDecode {
			s.Decoded++
		}
	}
	for i, res := range results {
		if !claimed[i] && res.OK() {
			// Decoded something that matches no transmission: false decode.
			matched := false
			for _, tx := range run.Truth {
				d := res.Packet.Start - tx.StartSample
				if d >= -win && d <= win {
					matched = true
					break
				}
			}
			if !matched {
				s.False++
			}
		}
	}
	return s
}

// ScoreDetections scores preamble detection only: a truth packet counts as
// detected when some tracked packet starts within half a symbol of it.
func ScoreDetections(run *Run, pkts []*rx.Packet, duration float64) Score {
	s := Score{Offered: len(run.Truth), Duration: duration}
	win := matchWindow(run)
	used := make([]bool, len(pkts))
	for _, tx := range run.Truth {
		for i, p := range pkts {
			if used[i] {
				continue
			}
			d := p.Start - tx.StartSample
			if d >= -win && d <= win {
				used[i] = true
				s.Detected++
				break
			}
		}
	}
	for i := range pkts {
		if !used[i] {
			s.False++
		}
	}
	return s
}
