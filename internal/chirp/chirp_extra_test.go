package chirp

import (
	"math"
	"math/cmplx"
	"testing"

	"cic/internal/dsp"
)

// TestAllSpreadingFactorsDemodulate: the chirp/de-chirp loop must hold for
// every LoRa spreading factor and several oversampling ratios.
func TestAllSpreadingFactorsDemodulate(t *testing.T) {
	for sf := 7; sf <= 12; sf++ {
		for _, osr := range []int{1, 2, 4} {
			p := Params{SF: sf, Bandwidth: 125e3, OSR: osr}
			g := mustGen(t, p)
			m := p.SamplesPerSymbol()
			sym := make([]complex128, m)
			for _, k := range []int{0, 1, p.ChipCount() / 2, p.ChipCount() - 1} {
				g.Symbol(sym, k)
				if got := demodAligned(g, sym); got != k {
					t.Fatalf("SF%d OSR%d: symbol %d → %d", sf, osr, k, got)
				}
			}
		}
	}
}

// TestChirpCyclicProperty: the base chirp is exactly periodic — symbol k is
// a cyclic shift with no phase seam, which is what makes de-chirped tones
// coherent across the frequency wrap.
func TestChirpCyclicProperty(t *testing.T) {
	p := Params{SF: 9, Bandwidth: 125e3, OSR: 2}
	g := mustGen(t, p)
	up := g.Upchirp()
	m := p.SamplesPerSymbol()
	// The product conj(up[n])·up[(n+shift) mod M] must advance by a
	// constant phase per sample within each wrap segment.
	shift := 100 * p.OSR
	var prevPhase float64
	jumps := 0
	for n := 0; n < m-1; n++ {
		v := cmplx.Conj(up[n]) * up[(n+shift)%m]
		w := cmplx.Conj(up[n+1]) * up[(n+1+shift)%m]
		d := cmplx.Phase(w * cmplx.Conj(v))
		if n > 0 {
			delta := math.Abs(dsp.WrapToHalf(d-prevPhase, math.Pi))
			if delta > 1e-6 {
				jumps++
			}
		}
		prevPhase = d
	}
	// Only the wrap crossings of the two copies may show increment changes
	// (and those must be full 2π multiples ≡ 0; tolerate the two segment
	// boundaries at most).
	if jumps > 2 {
		t.Errorf("phase increment changed %d times; chirp is not cyclic", jumps)
	}
}

// TestSymbolEnergyConstant: every symbol has identical (unit) energy.
func TestSymbolEnergyConstant(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 2}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	sym := make([]complex128, m)
	for k := 0; k < p.ChipCount(); k += 17 {
		g.Symbol(sym, k)
		if e := dsp.SignalEnergy(sym); math.Abs(e-float64(m)) > 1e-9 {
			t.Fatalf("symbol %d energy %g, want %d", k, e, m)
		}
	}
}

// TestDechirpOrthogonality: a symbol de-chirped against the wrong alignment
// (the neighbouring symbol value) leaves almost no energy at the wrong bin.
func TestDechirpOrthogonality(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 1}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	sym := make([]complex128, m)
	g.Symbol(sym, 100)
	buf := make([]complex128, m)
	g.Dechirp(buf, sym)
	dsp.MustPlan(m).Forward(buf)
	spec := dsp.FoldMagnitude(nil, buf, p.ChipCount(), p.OSR)
	peak := spec[100]
	for _, wrong := range []int{99, 101, 0, 200} {
		if spec[wrong] > peak/100 {
			t.Errorf("bin %d holds %g (peak %g): symbols not orthogonal", wrong, spec[wrong], peak)
		}
	}
}

// TestDechirpClampsOversizeWindow: a window longer than one symbol must not
// panic — the de-chirp processes one symbol's worth of samples and leaves
// the rest of dst untouched (the total-operation contract).
func TestDechirpClampsOversizeWindow(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 1}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	r := make([]complex128, 2*m)
	for i := range r {
		r[i] = complex(1, 0)
	}
	dst := make([]complex128, 2*m)
	g.Dechirp(dst, r)
	for i := 0; i < m; i++ {
		if dst[i] != g.Downchirp()[i] {
			t.Fatalf("sample %d not de-chirped", i)
		}
	}
	for i := m; i < 2*m; i++ {
		if dst[i] != 0 {
			t.Fatalf("sample %d beyond one symbol written", i)
		}
	}
	// Short windows de-chirp only their available samples.
	short := make([]complex128, m)
	g.Dechirp(short, r[:m/2])
	for i := m / 2; i < m; i++ {
		if short[i] != 0 {
			t.Fatalf("short window wrote past its length at %d", i)
		}
	}
}

func TestGeneratorAccessors(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 2}
	g := mustGen(t, p)
	if g.Params() != p {
		t.Error("Params accessor")
	}
	if len(g.Upchirp()) != p.SamplesPerSymbol() || len(g.Downchirp()) != p.SamplesPerSymbol() {
		t.Error("waveform lengths")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

// TestPartialDownchirpTone: DechirpDown on a window containing only part of
// a down-chirp still concentrates that part's energy on the delay bin.
func TestPartialDownchirpTone(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 4}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	win := make([]complex128, m)
	// Down-chirp occupying only the last 40% of the window.
	d := 6 * m / 10
	copy(win[d:], g.Downchirp()[:m-d])
	buf := make([]complex128, m)
	g.DechirpDown(buf, win)
	dsp.MustPlan(m).Forward(buf)
	mag := make(dsp.Spectrum, m)
	for i, v := range buf {
		mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	_, at := mag.Max()
	// d is not a multiple of OSR here, so the tone sits between bins;
	// accept either neighbour.
	if want := d / p.OSR; at != want && at != want+1 {
		t.Errorf("partial down-chirp tone at %d, want %d±1", at, want)
	}
}
