// Package chirp implements LoRa Chirp Spread Spectrum (CSS) modulation:
// generation of up- and down-chirps for any spreading factor, bandwidth and
// oversampling ratio, and de-chirping of received windows onto the folded
// LoRa bin grid (paper §3, Eqns 1–4).
//
// Discrete-time model. All signals are complex baseband sampled at
// fs = OSR·B. A symbol spans M = 2^SF·OSR samples. The fundamental up-chirp
// C0 sweeps its instantaneous frequency linearly from −B/2 to B/2 over the
// symbol; symbol value k shifts the start frequency by k·B/2^SF with
// wrap-around at B/2 (Eqn 1). Phase is accumulated per sample so the
// frequency wrap is handled exactly; de-chirping a time-aligned symbol k
// yields tone images on FFT bins k and k+(OSR−1)·2^SF of the M-point grid,
// which dsp.FoldMagnitude folds onto LoRa bin k.
package chirp

import (
	"fmt"
	"time"
)

// Params fixes the LoRa PHY dimensioning shared by a whole network.
type Params struct {
	SF        int     // spreading factor, 7..12
	Bandwidth float64 // Hz, e.g. 125e3, 250e3, 500e3
	OSR       int     // oversampling ratio (fs = OSR·Bandwidth), power of two >= 1
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.SF < 5 || p.SF > 12 {
		return fmt.Errorf("chirp: SF %d out of range [5,12]", p.SF)
	}
	if p.Bandwidth <= 0 {
		return fmt.Errorf("chirp: bandwidth %g must be positive", p.Bandwidth)
	}
	if p.OSR < 1 || p.OSR&(p.OSR-1) != 0 {
		return fmt.Errorf("chirp: OSR %d must be a power of two >= 1", p.OSR)
	}
	return nil
}

// ChipCount returns 2^SF, the number of chips (and LoRa bins) per symbol.
func (p Params) ChipCount() int { return 1 << p.SF }

// SamplesPerSymbol returns 2^SF · OSR.
func (p Params) SamplesPerSymbol() int { return p.ChipCount() * p.OSR }

// SampleRate returns OSR · Bandwidth in Hz.
func (p Params) SampleRate() float64 { return float64(p.OSR) * p.Bandwidth }

// SymbolDuration returns Ts = 2^SF / B.
func (p Params) SymbolDuration() time.Duration {
	return time.Duration(float64(p.ChipCount()) / p.Bandwidth * float64(time.Second))
}

// BinWidth returns the LoRa bin spacing B / 2^SF in Hz.
func (p Params) BinWidth() float64 { return p.Bandwidth / float64(p.ChipCount()) }

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("SF%d/BW%.0fkHz/OSR%d", p.SF, p.Bandwidth/1e3, p.OSR)
}
