package chirp

import (
	"fmt"
	"math"
)

// Generator produces and caches the chirp waveforms for one Params setting.
// It is safe for concurrent use after construction (all fields are
// read-only once built).
type Generator struct {
	p    Params
	up   []complex128 // fundamental up-chirp C0, one symbol
	down []complex128 // fundamental down-chirp C0*, one symbol
}

// NewGenerator builds a Generator, precomputing C0 and C0*.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p}
	g.up = baseChirp(p)
	g.down = make([]complex128, len(g.up))
	for i, v := range g.up {
		g.down[i] = complex(real(v), -imag(v))
	}
	return g, nil
}

// baseChirp generates C0 by per-sample phase accumulation with midpoint
// frequency sampling: the increment for sample n→n+1 is the instantaneous
// normalised frequency ((n+½)/M − ½)/OSR cycles/sample, so the sweep covers
// [−B/2, B/2) exactly once and the total accumulated phase over a symbol is
// exactly zero. The zero total phase makes the waveform *cyclic*: a symbol
// of value k is a cyclic shift of C0 with no phase seam at the frequency
// wrap, so de-chirping yields coherent tones (Eqns 1–4).
func baseChirp(p Params) []complex128 {
	m := p.SamplesPerSymbol()
	out := make([]complex128, m)
	phase := 0.0
	for n := 0; n < m; n++ {
		s, c := math.Sincos(2 * math.Pi * phase)
		out[n] = complex(c, s)
		frac := (float64(n) + 0.5) / float64(m)
		f := (frac - 0.5) / float64(p.OSR)
		phase += f
		if phase >= 1 {
			phase -= 1
		} else if phase < -1 {
			phase += 1
		}
	}
	return out
}

// Params returns the generator's parameter set.
func (g *Generator) Params() Params { return g.p }

// Upchirp returns the fundamental up-chirp C0 (shared backing array: callers
// must not modify it).
func (g *Generator) Upchirp() []complex128 { return g.up }

// Downchirp returns the fundamental down-chirp C0* (shared backing array:
// callers must not modify it).
func (g *Generator) Downchirp() []complex128 { return g.down }

// Symbol writes the waveform of data symbol value k (0 ≤ k < 2^SF) into
// dst, which must have SamplesPerSymbol length. The symbol is the
// fundamental chirp cyclically advanced by k chips — equivalent to the
// frequency-shift-with-wrap definition in Eqn 1 up to a constant phase.
// Malformed arguments (a symbol value outside the chip range, a dst of
// the wrong length) are reported as an error with dst untouched: symbol
// values reach this layer from user-supplied payloads, so they must not
// be able to panic the modulator.
func (g *Generator) Symbol(dst []complex128, k int) error {
	m := g.p.SamplesPerSymbol()
	if len(dst) != m {
		return fmt.Errorf("chirp: Symbol dst length %d != %d", len(dst), m)
	}
	n := g.p.ChipCount()
	if k < 0 || k >= n {
		return fmt.Errorf("chirp: symbol value %d out of range [0,%d)", k, n)
	}
	shift := k * g.p.OSR
	c := copy(dst, g.up[shift:])
	copy(dst[c:], g.up[:shift])
	return nil
}

// AppendSymbol appends symbol value k to buf and returns the extended
// slice. An out-of-range k is an error, with buf returned unmodified
// (the appended region is rolled back). The symbol is written directly
// into buf's grown tail — no per-call temporary is allocated.
func (g *Generator) AppendSymbol(buf []complex128, k int) ([]complex128, error) {
	m := g.p.SamplesPerSymbol()
	start := len(buf)
	if cap(buf)-start < m {
		newCap := 2 * cap(buf) // keep append's amortised geometric growth
		if newCap < start+m {
			newCap = start + m
		}
		grown := make([]complex128, start, newCap)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+m]
	if err := g.Symbol(buf[start:], k); err != nil {
		return buf[:start], err
	}
	return buf, nil
}

// AppendDownchirps appends count whole down-chirps plus a fraction frac
// (0 ≤ frac < 1) of one more, as used by the LoRa preamble's 2.25
// down-chirps.
func (g *Generator) AppendDownchirps(buf []complex128, count int, frac float64) []complex128 {
	for i := 0; i < count; i++ {
		buf = append(buf, g.down...)
	}
	if frac > 0 {
		n := int(frac * float64(g.p.SamplesPerSymbol()))
		buf = append(buf, g.down[:n]...)
	}
	return buf
}

// Dechirp multiplies the received window by C0* into dst:
// dst[n] = r[n]·conj(C0[n]). A time-aligned symbol k becomes a pure tone on
// folded bin k. The operation is total: it processes the common prefix
// min(len(dst), len(r), one symbol), so a partial window at the end of a
// capture de-chirps its available samples and a hostile window length can
// never crash a decode worker (the nopanic invariant).
func (g *Generator) Dechirp(dst, r []complex128) {
	r = clampWindow(dst, r, g.down)
	for i, v := range r {
		dst[i] = v * g.down[i]
	}
}

// DechirpDown multiplies the received window by C0 (the up-chirp) into dst.
// A received *down-chirp* delayed by d samples becomes a pure tone at
// normalised frequency d/(M·OSR) — the basis of CIC's down-chirp preamble
// detection (§5.8): data up-chirps do not concentrate under this operation,
// so ongoing transmissions do not clutter the detector. Like Dechirp it is
// total, processing min(len(dst), len(r), one symbol) samples.
func (g *Generator) DechirpDown(dst, r []complex128) {
	r = clampWindow(dst, r, g.up)
	for i, v := range r {
		dst[i] = v * g.up[i]
	}
}

// clampWindow truncates r to what one de-chirp step can process: the
// shorter of dst, r, and the reference chirp.
func clampWindow(dst, r, chirp []complex128) []complex128 {
	n := len(r)
	if len(dst) < n {
		n = len(dst)
	}
	if len(chirp) < n {
		n = len(chirp)
	}
	return r[:n]
}
