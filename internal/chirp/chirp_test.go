package chirp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cic/internal/dsp"
)

func mustGen(t testing.TB, p Params) *Generator {
	t.Helper()
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{SF: 4, Bandwidth: 125e3, OSR: 1},
		{SF: 13, Bandwidth: 125e3, OSR: 1},
		{SF: 8, Bandwidth: 0, OSR: 1},
		{SF: 8, Bandwidth: 125e3, OSR: 0},
		{SF: 8, Bandwidth: 125e3, OSR: 3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated, want error", p)
		}
	}
	good := Params{SF: 8, Bandwidth: 250e3, OSR: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("%+v rejected: %v", good, err)
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 8}
	if p.ChipCount() != 256 {
		t.Error("ChipCount")
	}
	if p.SamplesPerSymbol() != 2048 {
		t.Error("SamplesPerSymbol")
	}
	if p.SampleRate() != 2e6 {
		t.Error("SampleRate")
	}
	// Ts = 256/250k = 1.024 ms
	if d := p.SymbolDuration().Seconds(); math.Abs(d-1.024e-3) > 1e-9 {
		t.Errorf("SymbolDuration = %g", d)
	}
	if w := p.BinWidth(); math.Abs(w-976.5625) > 1e-9 {
		t.Errorf("BinWidth = %g", w)
	}
}

func TestChirpIsUnitModulus(t *testing.T) {
	g := mustGen(t, Params{SF: 7, Bandwidth: 125e3, OSR: 2})
	for i, v := range g.Upchirp() {
		mag := real(v)*real(v) + imag(v)*imag(v)
		if math.Abs(mag-1) > 1e-12 {
			t.Fatalf("sample %d magnitude² = %g", i, mag)
		}
	}
}

func TestDownchirpIsConjugate(t *testing.T) {
	g := mustGen(t, Params{SF: 7, Bandwidth: 125e3, OSR: 1})
	up, down := g.Upchirp(), g.Downchirp()
	for i := range up {
		if real(up[i]) != real(down[i]) || imag(up[i]) != -imag(down[i]) {
			t.Fatalf("sample %d: down is not conj(up)", i)
		}
	}
}

// demodAligned de-chirps a full, aligned symbol and returns the folded-peak
// bin.
func demodAligned(g *Generator, sym []complex128) int {
	p := g.Params()
	m := p.SamplesPerSymbol()
	buf := make([]complex128, m)
	g.Dechirp(buf, sym)
	dsp.MustPlan(m).Forward(buf)
	spec := dsp.FoldMagnitude(nil, buf, p.ChipCount(), p.OSR)
	_, at := spec.Max()
	return at
}

func TestDemodulateEverySymbolValue(t *testing.T) {
	for _, p := range []Params{
		{SF: 7, Bandwidth: 125e3, OSR: 1},
		{SF: 8, Bandwidth: 250e3, OSR: 8},
	} {
		g := mustGen(t, p)
		m := p.SamplesPerSymbol()
		sym := make([]complex128, m)
		// Exhaustive over all symbol values at SF7; strided at SF8/OSR8 to
		// bound runtime.
		stride := 1
		if p.OSR > 1 {
			stride = 7
		}
		for k := 0; k < p.ChipCount(); k += stride {
			g.Symbol(sym, k)
			if got := demodAligned(g, sym); got != k {
				t.Fatalf("%v: symbol %d demodulated as %d", p, k, got)
			}
		}
	}
}

func TestDemodulatePropertyRandomSymbols(t *testing.T) {
	p := Params{SF: 9, Bandwidth: 125e3, OSR: 2}
	g := mustGen(t, p)
	sym := make([]complex128, p.SamplesPerSymbol())
	cfg := &quick.Config{MaxCount: 64, Rand: rand.New(rand.NewSource(7))}
	prop := func(raw uint16) bool {
		k := int(raw) % p.ChipCount()
		g.Symbol(sym, k)
		return demodAligned(g, sym) == k
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDechirpPeakSharpness: an aligned symbol's tone should put nearly all
// energy into a single folded bin.
func TestDechirpPeakSharpness(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 4}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	sym := make([]complex128, m)
	g.Symbol(sym, 100)
	buf := make([]complex128, m)
	g.Dechirp(buf, sym)
	dsp.MustPlan(m).Forward(buf)
	spec := dsp.FoldMagnitude(nil, buf, p.ChipCount(), p.OSR)
	peak, at := spec.Max()
	if at != 100 {
		t.Fatalf("peak at %d", at)
	}
	// The amplitude fold reunites the two wrap-split tone segments: the
	// peak bin carries (L1+L2)² = M² while the split segments' combined
	// sidelobes (plus fold cross-terms) hold roughly as much again, so the
	// peak's share of total folded energy sits near one half.
	if frac := peak / spec.Energy(); frac < 0.45 {
		t.Errorf("peak holds %.2f of energy, want >= 0.45", frac)
	}
	// The peak must still dominate: at least 10x any other local maximum.
	peaks := dsp.TopPeaks(spec, 0, 2)
	if len(peaks) == 2 && peaks[1].Power > peak/10 {
		t.Errorf("second peak %g too close to main %g", peaks[1].Power, peak)
	}
}

// TestDelayedUpchirpSplitsPredictably: de-chirping an up-chirp that started
// d samples *earlier* than the window (so the window sees its tail, then the
// next symbol would start) produces a tone offset consistent with
// Δf = τ·B/2^SF (Eqn 10).
func TestDelayedUpchirpToneOffset(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 4}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	n := p.ChipCount()
	// Interferer boundary 96 chips into our window: both partial symbols
	// carry enough energy ((96/256)² and (160/256)² of a full tone) to rise
	// above the rectangular-window sidelobes of each other.
	d := 96 * p.OSR
	// Build a window that contains symbol k0's last d samples then symbol
	// k1's first m-d samples — the C_prev/C_next structure of Fig 6.
	k0, k1 := 30, 200
	win := make([]complex128, m)
	s0 := make([]complex128, m)
	s1 := make([]complex128, m)
	g.Symbol(s0, k0)
	g.Symbol(s1, k1)
	copy(win[:d], s0[m-d:])
	copy(win[d:], s1[:m-d])
	buf := make([]complex128, m)
	g.Dechirp(buf, win)
	dsp.MustPlan(m).Forward(buf)
	spec := dsp.FoldMagnitude(nil, buf, n, p.OSR)
	peaks := dsp.TopPeaks(spec, 0.2, 4)
	if len(peaks) < 2 {
		t.Fatalf("want 2 interference peaks, got %+v", peaks)
	}
	// Expected folded bins: prev symbol shifted by +d/OSR chips relative to
	// its value minus the elapsed part... For a symbol whose boundary is
	// offset, the tone appears at (k + boundaryChips) mod N where
	// boundaryChips accounts for the partial chirp position: prev symbol
	// contributes (k0 + (m-d)/OSR) mod N, next contributes (k1 - d/OSR)
	// shifted equivalently to (k1 + d/OSR?) — verify empirically both peaks
	// are where the de-chirp algebra says: bins (k0 - d/OSR) and
	// (k1 + ... ). We only require that the two strongest peaks be distinct
	// from each other and stable; exact bin bookkeeping is covered by the
	// CIC demodulator tests.
	if peaks[0].Bin == peaks[1].Bin {
		t.Error("expected two distinct interference tones")
	}
	// Both tones must carry roughly proportional energy shares: d/m and
	// (m-d)/m of a full-symbol tone.
	ratio := peaks[1].Power / peaks[0].Power
	if ratio <= 0 || ratio > 1 {
		t.Errorf("peak ratio %g out of (0,1]", ratio)
	}
}

// TestDownchirpDetectionTone: multiplying a delayed down-chirp by C0
// concentrates it on bin d/OSR; a data up-chirp under the same operation
// spreads (no dominant peak) — the §5.8 insight.
func TestDownchirpDetectionTone(t *testing.T) {
	p := Params{SF: 8, Bandwidth: 250e3, OSR: 4}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	fft := dsp.MustPlan(m)

	for _, dChips := range []int{0, 1, 33, 100} {
		d := dChips * p.OSR
		// Window containing a down-chirp starting at sample d (preceded by
		// silence). Only the overlapping part lands in the window.
		win := make([]complex128, m)
		copy(win[d:], g.Downchirp()[:m-d])
		buf := make([]complex128, m)
		g.DechirpDown(buf, win)
		fft.Forward(buf)
		mag := make(dsp.Spectrum, m)
		for i, v := range buf {
			mag[i] = real(v)*real(v) + imag(v)*imag(v)
		}
		_, at := mag.Max()
		want := d / p.OSR * p.OSR // tone at normalised freq d/(M·OSR) → M-bin d/OSR... see below
		_ = want
		// Tone frequency: product phase advance per sample is
		// f0(n) − f0(n−d) = d/M · 1/OSR cycles/sample → bin d/OSR on the
		// M-point grid.
		wantBin := d / p.OSR
		if at != wantBin {
			t.Errorf("delay %d chips: peak at M-bin %d, want %d", dChips, at, wantBin)
		}
	}

	// Up-chirp data symbol under DechirpDown must spread: peak share of
	// total energy stays small.
	sym := make([]complex128, m)
	g.Symbol(sym, 77)
	buf := make([]complex128, m)
	g.DechirpDown(buf, sym)
	fft.Forward(buf)
	mag := make(dsp.Spectrum, m)
	for i, v := range buf {
		mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	peak, _ := mag.Max()
	if frac := peak / mag.Energy(); frac > 0.05 {
		t.Errorf("up-chirp concentrates %.3f of energy under DechirpDown, want < 0.05", frac)
	}
}

func TestAppendHelpers(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 1}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()
	buf, err := g.AppendSymbol(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf = g.AppendDownchirps(buf, 2, 0.25)
	want := m + 2*m + m/4
	if len(buf) != want {
		t.Errorf("buffer length %d, want %d", len(buf), want)
	}
	if got := demodAligned(g, buf[:m]); got != 5 {
		t.Errorf("first symbol decodes to %d", got)
	}
}

// TestSymbolRejectsMalformedInput: symbol values and buffer lengths come
// from user payloads, so malformed inputs must surface as errors (never
// panics) and must leave the destination untouched.
func TestSymbolRejectsMalformedInput(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 1}
	g := mustGen(t, p)
	m := p.SamplesPerSymbol()

	dst := make([]complex128, m)
	for _, k := range []int{-1, p.ChipCount(), p.ChipCount() + 500} {
		if err := g.Symbol(dst, k); err == nil {
			t.Errorf("symbol value %d accepted, want error", k)
		}
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("failed Symbol call wrote into dst")
		}
	}
	if err := g.Symbol(make([]complex128, m-1), 0); err == nil {
		t.Error("short dst accepted, want error")
	}
	if err := g.Symbol(dst, 0); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}

// TestAppendSymbolRollsBackOnError: a rejected symbol value must return the
// buffer at its original length so partially built frames stay consistent.
func TestAppendSymbolRollsBackOnError(t *testing.T) {
	p := Params{SF: 7, Bandwidth: 125e3, OSR: 1}
	g := mustGen(t, p)
	buf, err := g.AppendSymbol(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.AppendSymbol(buf, p.ChipCount())
	if err == nil {
		t.Fatal("out-of-range AppendSymbol succeeded")
	}
	if len(got) != len(buf) {
		t.Errorf("buffer length %d after failed append, want %d", len(got), len(buf))
	}
}
