package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cic/internal/dsp"
)

func TestAmplitudeForSNR(t *testing.T) {
	if a := AmplitudeForSNR(0); a != 1 {
		t.Errorf("0 dB amplitude = %g", a)
	}
	if a := AmplitudeForSNR(20); math.Abs(a-10) > 1e-12 {
		t.Errorf("20 dB amplitude = %g", a)
	}
	if a := AmplitudeForSNR(-20); math.Abs(a-0.1) > 1e-12 {
		t.Errorf("-20 dB amplitude = %g", a)
	}
}

func TestApplyAmplitudeAndPhase(t *testing.T) {
	wave := []complex128{1, 1, 1, 1}
	out := Apply(wave, Impairments{Amplitude: 2, InitialPhase: math.Pi / 2})
	for i, v := range out {
		if d := cmplx.Abs(v - 2i); d > 1e-12 {
			t.Errorf("sample %d = %v, want 2i", i, v)
		}
	}
	// Zero amplitude defaults to 1.
	def := Apply(wave, Impairments{})
	if def[0] != 1 {
		t.Error("default amplitude not 1")
	}
}

func TestApplyCFORotatesTone(t *testing.T) {
	// A DC signal with CFO f becomes a tone at f: check with a DFT.
	n := 1024
	fs := 250e3
	cfo := 3e3
	wave := make([]complex128, n)
	for i := range wave {
		wave[i] = 1
	}
	out := Apply(wave, Impairments{Amplitude: 1, CFOHz: cfo, SampleRate: fs})
	fft := dsp.MustPlan(n)
	fft.Forward(out)
	mag := make(dsp.Spectrum, n)
	for i, v := range out {
		mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	_, at := mag.Max()
	wantBin := int(math.Round(cfo / fs * float64(n)))
	if at != wantBin {
		t.Errorf("CFO tone at bin %d, want %d", at, wantBin)
	}
}

func TestApplyFadeModulatesEnvelope(t *testing.T) {
	n := 1000
	wave := make([]complex128, n)
	for i := range wave {
		wave[i] = 1
	}
	out := Apply(wave, Impairments{
		Amplitude: 1, SampleRate: 1000,
		FadeDepth: 0.5, FadePeriod: 0.5, FadePhase: 0,
	})
	var minA, maxA = math.Inf(1), math.Inf(-1)
	for _, v := range out {
		a := cmplx.Abs(v)
		minA = math.Min(minA, a)
		maxA = math.Max(maxA, a)
	}
	if maxA < 1.45 || minA > 0.55 {
		t.Errorf("fade envelope [%g,%g], want ≈[0.5,1.5]", minA, maxA)
	}
}

func TestRendererDeterministicAcrossWindows(t *testing.T) {
	r := NewRenderer(nil, 4, 42)
	full := make([]complex128, 256)
	r.Render(full, 1000)
	// Render the same region in two halves: must agree exactly.
	a := make([]complex128, 128)
	b := make([]complex128, 128)
	r.Render(a, 1000)
	r.Render(b, 1128)
	for i := range a {
		if a[i] != full[i] {
			t.Fatalf("first half sample %d differs", i)
		}
		if b[i] != full[128+i] {
			t.Fatalf("second half sample %d differs", i)
		}
	}
	// Different seed ⇒ different noise.
	r2 := NewRenderer(nil, 4, 43)
	other := make([]complex128, 256)
	r2.Render(other, 1000)
	same := 0
	for i := range other {
		if other[i] == full[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d identical noise samples across seeds", same)
	}
}

func TestRendererNoisePower(t *testing.T) {
	osr := 8
	r := NewRenderer(nil, osr, 7)
	buf := make([]complex128, 1<<16)
	r.Render(buf, 0)
	p := dsp.SignalPower(buf)
	if math.Abs(p-float64(osr)) > 0.2*float64(osr) {
		t.Errorf("noise power %g, want ≈%d", p, osr)
	}
}

func TestRendererMixesOverlappingEmissions(t *testing.T) {
	e1 := Emission{Start: 10, Samples: []complex128{1, 1, 1, 1}}
	e2 := Emission{Start: 12, Samples: []complex128{2i, 2i, 2i, 2i}}
	r := NewRenderer([]Emission{e1, e2}, 0, 0) // noiseless
	buf := make([]complex128, 10)
	r.Render(buf, 8)
	want := []complex128{0, 0, 1, 1, complex(1, 2), complex(1, 2), 2i, 2i, 0, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, buf[i], want[i])
		}
	}
}

func TestRendererPartialWindowClipping(t *testing.T) {
	e := Emission{Start: 0, Samples: []complex128{1, 2, 3, 4}}
	r := NewRenderer([]Emission{e}, 0, 0)
	buf := make([]complex128, 2)
	r.Render(buf, 2) // window covers only the tail
	if buf[0] != 3 || buf[1] != 4 {
		t.Errorf("tail render = %v", buf)
	}
	r.Render(buf, -1) // window starts before the emission
	if buf[0] != 0 || buf[1] != 1 {
		t.Errorf("head render = %v", buf)
	}
}

func TestTotalSpan(t *testing.T) {
	r := NewRenderer([]Emission{
		{Start: 50, Samples: make([]complex128, 10)},
		{Start: 5, Samples: make([]complex128, 10)},
	}, 0, 0)
	s, e := r.TotalSpan()
	if s != 5 || e != 60 {
		t.Errorf("span [%d,%d), want [5,60)", s, e)
	}
	empty := NewRenderer(nil, 0, 0)
	if s, e := empty.TotalSpan(); s != 0 || e != 0 {
		t.Error("empty span not (0,0)")
	}
}

func TestGaussPairStatistics(t *testing.T) {
	n := 1 << 15
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		a, b := gaussPair(99, uint64(i))
		sum += a + b
		sumSq += a*a + b*b
	}
	mean := sum / float64(2*n)
	variance := sumSq/float64(2*n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("noise mean %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("noise variance %g", variance)
	}
}

func TestRandomCFOWithinTolerance(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		cfo := RandomCFO(r, 10, 915e6) // ±10 ppm at 915 MHz → ±9150 Hz
		if math.Abs(cfo) > 9150 {
			t.Fatalf("CFO %g exceeds tolerance", cfo)
		}
	}
}

func TestAddAWGNPower(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	buf := make([]complex128, 1<<15)
	AddAWGN(buf, 4, r)
	if p := dsp.SignalPower(buf); math.Abs(p-4) > 0.5 {
		t.Errorf("AWGN power %g, want ≈4", p)
	}
}

func TestEmissionEnd(t *testing.T) {
	e := Emission{Start: 10, Samples: make([]complex128, 5)}
	if e.End() != 15 {
		t.Errorf("End = %d", e.End())
	}
}

func TestApplyPreservesLength(t *testing.T) {
	wave := make([]complex128, 123)
	out := Apply(wave, Impairments{Amplitude: 2, CFOHz: 100, SampleRate: 1e6})
	if len(out) != len(wave) {
		t.Errorf("length %d", len(out))
	}
	// Input untouched.
	for _, v := range wave {
		if v != 0 {
			t.Fatal("Apply mutated its input")
		}
	}
}

func TestRendererNoiselessWindowIsZero(t *testing.T) {
	r := NewRenderer(nil, 0, 1)
	buf := make([]complex128, 64)
	buf[3] = 42 // stale
	r.Render(buf, 100)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("sample %d = %v, want 0", i, v)
		}
	}
}
