// Package channel simulates the radio medium and front end between the
// modulated LoRa waveforms and the gateway's baseband samples: per-device
// impairments (amplitude, carrier frequency offset, phase, slow fading),
// superposition of asynchronous transmissions, and additive white Gaussian
// noise. It replaces the paper's physical deployments and USRP B200 front
// end with a deterministic, seedable substitute.
//
// SNR convention. Noise is white over the full sampled bandwidth
// fs = OSR·B, but SNR quotes follow the usual receiver convention of noise
// power *within the signal bandwidth B*. The in-band noise power is fixed
// at 1.0, so a transmission received at snr dB has amplitude
// 10^(snr/20) and the generated noise has total power OSR (variance OSR/2
// per I/Q component).
package channel

import (
	"math"
	"math/rand"
)

// Impairments describes how one transmission arrives at the gateway.
type Impairments struct {
	Amplitude    float64 // linear amplitude (1.0 ⇒ 0 dB SNR in-band)
	CFOHz        float64 // carrier frequency offset in Hz
	InitialPhase float64 // radians
	SampleRate   float64 // Hz, needed to apply CFOHz

	// Optional slow amplitude fade: amplitude is modulated by
	// 1 + FadeDepth·sin(2π·t/FadePeriod + FadePhase). Zero depth disables.
	FadeDepth  float64
	FadePeriod float64 // seconds
	FadePhase  float64 // radians
}

// AmplitudeForSNR converts a target in-band SNR in dB to linear amplitude.
func AmplitudeForSNR(snrDB float64) float64 { return math.Pow(10, snrDB/20) }

// Apply returns a copy of wave with the impairments applied.
func Apply(wave []complex128, imp Impairments) []complex128 {
	out := make([]complex128, len(wave))
	amp := imp.Amplitude
	if amp == 0 {
		amp = 1
	}
	phaseStep := 0.0
	if imp.SampleRate > 0 {
		phaseStep = 2 * math.Pi * imp.CFOHz / imp.SampleRate
	}
	fade := imp.FadeDepth != 0 && imp.FadePeriod > 0 && imp.SampleRate > 0
	var fadeStep float64
	if fade {
		fadeStep = 2 * math.Pi / (imp.FadePeriod * imp.SampleRate)
	}
	phase := imp.InitialPhase
	for i, v := range wave {
		s, c := math.Sincos(phase)
		a := amp
		if fade {
			a *= 1 + imp.FadeDepth*math.Sin(fadeStep*float64(i)+imp.FadePhase)
		}
		out[i] = v * complex(a*c, a*s)
		phase += phaseStep
	}
	return out
}

// Emission is a waveform occupying the air from an absolute sample index.
type Emission struct {
	Start   int64
	Samples []complex128
}

// End returns the first sample index after the emission.
func (e Emission) End() int64 { return e.Start + int64(len(e.Samples)) }

// Renderer mixes emissions and deterministic AWGN into arbitrary windows of
// the air. The noise at absolute sample index i depends only on (seed, i),
// so overlapping or repeated window renders agree sample-for-sample — the
// property that lets experiments stream a long run in bounded memory.
type Renderer struct {
	emissions  []Emission
	noiseSigma float64 // per-component standard deviation
	seed       uint64
}

// NewRenderer creates a Renderer. osr scales the full-band noise so that
// the in-band (bandwidth B) noise power is exactly 1.0; pass osr = 0 to
// disable noise entirely (ideal channel).
func NewRenderer(emissions []Emission, osr int, seed int64) *Renderer {
	sigma := 0.0
	if osr > 0 {
		sigma = math.Sqrt(float64(osr) / 2)
	}
	return &Renderer{emissions: emissions, noiseSigma: sigma, seed: uint64(seed)}
}

// Render fills dst with the air's samples for the absolute window
// [start, start+len(dst)).
func (r *Renderer) Render(dst []complex128, start int64) {
	end := start + int64(len(dst))
	if r.noiseSigma == 0 {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		for i := range dst {
			nI, nQ := gaussPair(r.seed, uint64(start+int64(i)))
			dst[i] = complex(nI*r.noiseSigma, nQ*r.noiseSigma)
		}
	}
	for _, e := range r.emissions {
		if e.End() <= start || e.Start >= end {
			continue
		}
		lo := e.Start
		if lo < start {
			lo = start
		}
		hi := e.End()
		if hi > end {
			hi = end
		}
		src := e.Samples[lo-e.Start : hi-e.Start]
		d := dst[lo-start:]
		for i, v := range src {
			d[i] += v
		}
	}
}

// TotalSpan returns the lowest start and highest end across all emissions
// (0,0 when empty).
func (r *Renderer) TotalSpan() (start, end int64) {
	if len(r.emissions) == 0 {
		return 0, 0
	}
	start, end = r.emissions[0].Start, r.emissions[0].End()
	for _, e := range r.emissions[1:] {
		if e.Start < start {
			start = e.Start
		}
		if e.End() > end {
			end = e.End()
		}
	}
	return
}

// gaussPair derives two independent standard normal values from (seed, i)
// via splitmix64 and the Box–Muller transform. Counter-based generation
// gives random access: any window render sees identical noise.
func gaussPair(seed, i uint64) (float64, float64) {
	u1 := toUniform(splitmix64(seed ^ i*0x9E3779B97F4A7C15))
	u2 := toUniform(splitmix64(seed ^ i*0x9E3779B97F4A7C15 ^ 0xBF58476D1CE4E5B9))
	// Guard against log(0).
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	r := math.Sqrt(-2 * math.Log(u1))
	s, c := math.Sincos(2 * math.Pi * u2)
	return r * c, r * s
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

func toUniform(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}

// RandomCFO draws a carrier frequency offset for a device with the given
// crystal tolerance (±ppm) at carrier frequency fc Hz.
func RandomCFO(r *rand.Rand, ppm, fc float64) float64 {
	return (2*r.Float64() - 1) * ppm * 1e-6 * fc
}

// AddAWGN adds in-band-unit-power AWGN (scaled for osr as in NewRenderer)
// to a standalone waveform using r, for single-shot tests that do not need
// a Renderer.
func AddAWGN(wave []complex128, osr int, r *rand.Rand) {
	sigma := math.Sqrt(float64(osr) / 2)
	for i := range wave {
		wave[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
}
