package cic_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cic"
)

// twoPacketTrace builds a 2-packet collision (the second preamble lands
// inside the first packet's payload) for the stats acceptance test.
func twoPacketTrace(t testing.TB, cfg cic.Config) []complex128 {
	t.Helper()
	sym := int64(cfg.SamplesPerSymbol())
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("collision member A"), StartSample: 4096, SNR: 27, CFO: 1500},
		{Payload: []byte("collision member B"), StartSample: 4096 + 13*sym + 211, SNR: 24, CFO: -2400},
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	return append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)
}

// TestGatewayStatsCollision: a streaming decode of a 2-packet collision
// with a registry attached must light up every decode stage — detection,
// demodulation, the §5.6–5.7 candidate gates, CRC — and the stage totals
// must be mutually consistent.
func TestGatewayStatsCollision(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq := twoPacketTrace(t, cfg)

	reg := cic.NewMetrics()
	pkts := streamThrough(t, cfg, iq, rand.New(rand.NewSource(7)), cic.WithMetrics(reg))
	if len(pkts) != 2 {
		t.Fatalf("expected 2 packets from the collision, got %d", len(pkts))
	}
	s := reg.Snapshot()

	mustPositive := func(name string) {
		t.Helper()
		if s.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, s.Counters[name])
		}
	}
	mustPositive("samples_ingested")
	mustPositive("detect_windows")
	mustPositive("preambles_detected")
	mustPositive("headers_decoded")
	mustPositive("symbols_demodulated")
	mustPositive("icss_subsymbols")
	mustPositive("crc_pass")
	for _, gate := range []string{"sed", "cfo", "power"} {
		if s.Counters[gate+"_accept"]+s.Counters[gate+"_reject"] <= 0 {
			t.Errorf("gate %s saw no candidates (accept=%d reject=%d)",
				gate, s.Counters[gate+"_accept"], s.Counters[gate+"_reject"])
		}
	}

	// Totals: every delivered packet was counted, every counted packet
	// either decoded a header or failed it, and every decoded header went
	// through exactly one CRC verdict.
	if got, want := s.Counters["packets_emitted"], int64(len(pkts)); got != want {
		t.Errorf("packets_emitted = %d, want %d (packets delivered)", got, want)
	}
	if s.Counters["headers_decoded"]+s.Counters["header_failures"] != s.Counters["packets_emitted"] {
		t.Errorf("headers_decoded(%d) + header_failures(%d) != packets_emitted(%d)",
			s.Counters["headers_decoded"], s.Counters["header_failures"], s.Counters["packets_emitted"])
	}
	if s.Counters["crc_pass"]+s.Counters["crc_fail"] != s.Counters["headers_decoded"] {
		t.Errorf("crc_pass(%d) + crc_fail(%d) != headers_decoded(%d)",
			s.Counters["crc_pass"], s.Counters["crc_fail"], s.Counters["headers_decoded"])
	}
	if s.Counters["preambles_detected"] != s.Counters["packets_emitted"] {
		t.Errorf("preambles_detected(%d) != packets_emitted(%d): every tracked packet must be dispatched",
			s.Counters["preambles_detected"], s.Counters["packets_emitted"])
	}

	// Stage histograms observed once per packet (demod, latency) and the
	// collision-size histogram saw the 1-interferer overlap.
	for _, h := range []string{"stage_demod_seconds", "decode_latency_seconds", "stage_reorder_seconds"} {
		if s.Histograms[h].Count != int64(len(pkts)) {
			t.Errorf("histogram %s count = %d, want %d", h, s.Histograms[h].Count, len(pkts))
		}
	}
	if s.Histograms["collision_set_size"].Count != int64(len(pkts)) {
		t.Errorf("collision_set_size count = %d, want %d", s.Histograms["collision_set_size"].Count, len(pkts))
	}
	if s.Histograms["decode_latency_seconds"].Sum <= 0 {
		t.Error("decode_latency_seconds recorded no elapsed time")
	}

	// Gauges must have settled: no queued jobs, nothing held for reorder.
	if s.Gauges["workers_busy"] != 0 {
		t.Errorf("workers_busy = %d after Close", s.Gauges["workers_busy"])
	}
	if s.Gauges["reorder_held"] != 0 {
		t.Errorf("reorder_held = %d after Close", s.Gauges["reorder_held"])
	}
}

// TestGatewayStatsDetached: without WithMetrics, Stats() is the zero
// snapshot (and safe to call).
func TestGatewayStatsDetached(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq := twoPacketTrace(t, cfg)
	gw, err := cic.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)
	if _, err := gw.Write(iq); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	s := gw.Stats()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("detached Stats() not empty: %+v", s)
	}
}

// TestGatewayTracerOrdering: on a 3-packet collision every packet produces
// detect → header → emit in that order, and emit events arrive in air-time
// (delivery) order.
func TestGatewayTracerOrdering(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq, payloads := streamTrace(t, cfg)

	var mu sync.Mutex
	var events []cic.Event
	tracer := func(ev cic.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	pkts := streamThrough(t, cfg, iq, rand.New(rand.NewSource(3)),
		cic.WithMetrics(cic.NewMetrics()), cic.WithTracer(tracer))
	if len(pkts) != len(payloads) {
		t.Fatalf("decoded %d packets, want %d", len(pkts), len(payloads))
	}

	// Per-packet lifecycle order.
	stageIdx := map[cic.EventKind]int{cic.EventDetect: 0, cic.EventHeader: 1, cic.EventEmit: 2}
	lastStage := map[int]int{}
	byKind := map[cic.EventKind]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
		idx, ok := stageIdx[ev.Kind]
		if !ok {
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
		if prev, seen := lastStage[ev.PacketID]; seen && idx <= prev {
			t.Errorf("packet %d: stage %q out of order", ev.PacketID, ev.Kind)
		}
		lastStage[ev.PacketID] = idx
	}
	if byKind[cic.EventDetect] != 3 || byKind[cic.EventHeader] != 3 || byKind[cic.EventEmit] != 3 {
		t.Fatalf("event counts detect/header/emit = %d/%d/%d, want 3/3/3",
			byKind[cic.EventDetect], byKind[cic.EventHeader], byKind[cic.EventEmit])
	}

	// Emit events must be in delivery order, which for the gateway is
	// air-time order of the packet starts.
	var emits []cic.Event
	for _, ev := range events {
		if ev.Kind == cic.EventEmit {
			emits = append(emits, ev)
		}
	}
	if !sort.SliceIsSorted(emits, func(a, b int) bool { return emits[a].Start < emits[b].Start }) {
		t.Errorf("emit events not in air-time order: %+v", emits)
	}
	for _, ev := range emits {
		if !ev.HeaderOK || !ev.CRCOK {
			t.Errorf("emit for packet %d not clean: header=%v crc=%v", ev.PacketID, ev.HeaderOK, ev.CRCOK)
		}
		if ev.Latency <= 0 {
			t.Errorf("emit for packet %d has no detect→emit latency", ev.PacketID)
		}
		if ev.PayloadLen == 0 {
			t.Errorf("emit for packet %d has empty payload", ev.PacketID)
		}
	}
	// The middle packet overlaps both neighbours, so at least one packet's
	// demodulation must have exercised the candidate gates.
	gatesTotal := int64(0)
	for _, ev := range emits {
		g := ev.Gates
		gatesTotal += g.SEDAccept + g.SEDReject + g.CFOAccept + g.CFOReject + g.PowerAccept + g.PowerReject
	}
	if gatesTotal == 0 {
		t.Error("no per-packet gate verdicts attributed to emit events")
	}
}

// TestReceiverStats: the batch Receiver exposes the same registry surface
// through WithMetrics/Stats.
func TestReceiverStats(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq := twoPacketTrace(t, cfg)

	reg := cic.NewMetrics()
	var mu sync.Mutex
	kinds := map[cic.EventKind]int{}
	recv, err := cic.NewReceiver(cfg, cic.WithMetrics(reg), cic.WithTracer(func(ev cic.Event) {
		mu.Lock()
		kinds[ev.Kind]++
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := recv.DecodeBuffer(iq)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("expected 2 packets, got %d", len(pkts))
	}
	s := recv.Stats()
	if s.Counters["preambles_detected"] != 2 {
		t.Errorf("preambles_detected = %d, want 2", s.Counters["preambles_detected"])
	}
	if s.Counters["packets_emitted"] != 2 {
		t.Errorf("packets_emitted = %d, want 2", s.Counters["packets_emitted"])
	}
	if s.Counters["crc_pass"]+s.Counters["crc_fail"] != s.Counters["headers_decoded"] {
		t.Errorf("crc totals inconsistent: %v", s.Counters)
	}
	if s.Counters["symbols_demodulated"] <= 0 || s.Counters["detect_windows"] <= 0 {
		t.Errorf("stage counters silent: %v", s.Counters)
	}
	if kinds[cic.EventDetect] != 2 || kinds[cic.EventHeader] != 2 || kinds[cic.EventEmit] != 2 {
		t.Errorf("batch tracer events detect/header/emit = %d/%d/%d, want 2/2/2",
			kinds[cic.EventDetect], kinds[cic.EventHeader], kinds[cic.EventEmit])
	}
}
