#!/bin/sh
# End-to-end smoke of the declarative experiment harness (make
# experiments-smoke): the committed downscaled config runs the full
# config → trial matrix → journal → aggregate pipeline in BOTH drive
# modes, gets killed mid-matrix, resumes from the journal, and must
# produce byte-identical aggregates to the uninterrupted run.
set -eu

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

CONFIG=experiments/smoke.json
EXPERIMENTS="$WORK/cic-experiments"
GATEWAYD="$WORK/cic-gatewayd"

# Lint gate first: on failure, copy the SARIF artifact out of the work
# dir (the trap removes it) and print its surviving path.
echo "experiments-smoke: lint gate"
if ! go run ./cmd/cic-lint -sarif-file "$WORK/lint.sarif" ./... > "$WORK/lint.out" 2>&1; then
    cat "$WORK/lint.out"
    cp "$WORK/lint.sarif" lint.sarif 2>/dev/null || true
    echo "experiments-smoke: FAIL — lint gate failed; SARIF report: $(pwd)/lint.sarif" >&2
    exit 1
fi

echo "experiments-smoke: building binaries"
go build -o "$EXPERIMENTS" ./cmd/cic-experiments
go build -o "$GATEWAYD" ./cmd/cic-gatewayd

csv_check() {
    # Structural validity: comment line, header with the CIC series and
    # its ci95 column, and a nonzero decoded PRR in the CIC column.
    f="$1"
    [ -s "$f" ] || { echo "experiments-smoke: FAIL: $f empty" >&2; exit 1; }
    sed -n 2p "$f" | grep -q '^offered pkts/s,CIC,CIC ci95' || {
        echo "experiments-smoke: FAIL: $f header malformed: $(sed -n 2p "$f")" >&2; exit 1; }
    awk -F, 'NR>2 && $2+0 > 0 { ok=1 } END { exit ok ? 0 : 1 }' "$f" || {
        echo "experiments-smoke: FAIL: $f has no nonzero CIC PRR" >&2; exit 1; }
}

journal_check() {
    # Every journal line is a JSON object carrying the config identity.
    j="$1"
    [ -s "$j" ] || { echo "experiments-smoke: FAIL: journal $j empty" >&2; exit 1; }
    if grep -qv '^{.*"config_sha":"[0-9a-f]\{64\}".*}$' "$j"; then
        echo "experiments-smoke: FAIL: journal $j has malformed lines" >&2; exit 1
    fi
}

echo "experiments-smoke: in-process drive (uninterrupted reference)"
"$EXPERIMENTS" -config "$CONFIG" -journal "$WORK/ref.ndjson" \
    -outdir "$WORK/ref" -quiet >/dev/null
csv_check "$WORK/ref/smoke_D1.csv"
journal_check "$WORK/ref.ndjson"

echo "experiments-smoke: kill mid-matrix, then resume"
# -stop-after halts the run after 2 of 4 trials exactly as a kill would
# leave it: a partial journal. Also exercise a real SIGKILL arriving
# while a second invocation is mid-matrix — whichever trials it
# completed are journaled; the torn tail (if any) must be tolerated.
"$EXPERIMENTS" -config "$CONFIG" -journal "$WORK/res.ndjson" \
    -stop-after 2 -trial-concurrency 1 -quiet >/dev/null
lines=$(wc -l < "$WORK/res.ndjson")
[ "$lines" -eq 2 ] || {
    echo "experiments-smoke: FAIL: expected 2 journaled trials after stop, got $lines" >&2; exit 1; }
"$EXPERIMENTS" -config "$CONFIG" -journal "$WORK/res.ndjson" \
    -outdir "$WORK/res" -quiet >/dev/null &
pid=$!
sleep 0.2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
"$EXPERIMENTS" -config "$CONFIG" -journal "$WORK/res.ndjson" \
    -outdir "$WORK/res" -quiet >/dev/null
cmp "$WORK/ref/smoke_D1.csv" "$WORK/res/smoke_D1.csv" || {
    echo "experiments-smoke: FAIL: resumed aggregates differ from uninterrupted run" >&2; exit 1; }

echo "experiments-smoke: gatewayd drive (spawned daemon, fault schedule armed)"
"$EXPERIMENTS" -config "$CONFIG" -journal "$WORK/gw.ndjson" \
    -drive gatewayd -gatewayd-bin "$GATEWAYD" \
    -outdir "$WORK/gw" -quiet >/dev/null
csv_check "$WORK/gw/smoke_D1.csv"
journal_check "$WORK/gw.ndjson"
grep -q '"drive":"gatewayd"' "$WORK/gw.ndjson" || {
    echo "experiments-smoke: FAIL: gatewayd journal lines not marked" >&2; exit 1; }

echo "experiments-smoke: PASS (both drive modes, kill-resume byte-identical)"
