#!/bin/sh
# Benchmark regression gate (make bench-gate, part of make ci).
#
# Re-runs the two recorded benchmark families and compares them against
# the committed BENCH_gateway.json / BENCH_dsp.json records via
# `cic-bench -gate`. The authoritative check is allocs/op — Go's
# allocation accounting is deterministic per code path, so growth past
# max(+10%, +5) over the committed value fails on any machine without
# flaking. Wall-clock numbers are machine-sensitive and are NOT gated
# here; re-measure them with `make bench-matrix` when touching the hot
# path and commit the refreshed records.
set -eu
cd "$(dirname "$0")/.."

GO=${GO:-go}

echo "bench-gate: gateway streaming pipeline vs BENCH_gateway.json"
$GO test -run '^$' -bench 'GatewayStream' -benchtime=10x ./ \
	| $GO run ./cmd/cic-bench -gate BENCH_gateway.json

echo "bench-gate: DSP kernels vs BENCH_dsp.json"
$GO test -run '^$' -bench 'FFT4096|ForwardWindowed1024|ForwardReal1024|DFTBin1024' -benchtime=1000x ./internal/dsp/ \
	| $GO run ./cmd/cic-bench -gate BENCH_dsp.json

echo "bench-gate: all benchmarks within committed allocation budgets"
