#!/usr/bin/env bash
# End-to-end smoke of the network ingestion pipeline:
#   cic-gen capture → cic-feed → cic-gatewayd → NDJSON assert.
# Builds the tools, generates a 3-packet collision with known ground
# truth, streams it into a live daemon over TCP, drains the daemon with
# SIGTERM, and asserts every ground-truth payload appears CRC-verified
# in the NDJSON output. Then the resilience legs: a mid-stream
# SIGKILL + restart of cic-feed must resume gap-free, and a two-shard
# cic-routerd fleet must survive a backend SIGKILL with exactly-once
# output (see the cluster scenario at the bottom).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon=
pids=()
cleanup() {
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
    for p in ${pids[@]+"${pids[@]}"}; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_addr_file PATH PID LOG — block until the daemon at PID writes its
# bound addresses to PATH, bailing out with its log if it dies first.
wait_addr_file() {
    local path=$1 pid=$2 log=$3
    for _ in $(seq 100); do
        [ -s "$path" ] && return 0
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "smoke: FAIL — daemon exited during startup (listen address in use?)"
            cat "$log"
            exit 1
        fi
        sleep 0.1
    done
    echo "smoke: daemon never bound"
    cat "$log"
    exit 1
}

# Lint gate first: `make ci` reaches smoke only after `make lint`, but
# when smoke runs standalone on a dirty tree the invariant suite must
# still hold. On failure the SARIF artifact is copied OUT of the temp
# dir (which the EXIT trap removes) so the printed path stays valid.
echo "smoke: lint gate"
if ! go run ./cmd/cic-lint -sarif-file "$tmp/lint.sarif" ./... > "$tmp/lint.out" 2>&1; then
    cat "$tmp/lint.out"
    cp "$tmp/lint.sarif" lint.sarif 2>/dev/null || true
    echo "smoke: FAIL — lint gate failed; SARIF report: $(pwd)/lint.sarif"
    exit 1
fi

echo "smoke: building tools"
go build -o "$tmp/bin/" ./cmd/cic-gen ./cmd/cic-feed ./cmd/cic-gatewayd \
    ./cmd/cic-routerd ./cmd/cic-decode ./cmd/cic-promcheck

echo "smoke: generating collision capture"
"$tmp/bin/cic-gen" -out "$tmp/capture.cf32" -packets 3 -payload 12 -cr 3 -seed 7 > "$tmp/truth.csv"

echo "smoke: starting cic-gatewayd"
"$tmp/bin/cic-gatewayd" -listen 127.0.0.1:0 -out "$tmp/out.ndjson" \
    -addr-file "$tmp/addr" -debug-addr 127.0.0.1:0 -quiet 2> "$tmp/daemon.log" &
daemon=$!
for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$daemon" 2>/dev/null; then
        # Died before binding — most commonly the listen address is
        # already in use. Surface its log immediately instead of
        # spinning out the full wait.
        daemon=
        echo "smoke: FAIL — cic-gatewayd exited during startup (listen address in use?)"
        cat "$tmp/daemon.log"
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "smoke: daemon never bound"; cat "$tmp/daemon.log"; exit 1; }
addr=$(head -n1 "$tmp/addr")

echo "smoke: feeding capture to $addr"
"$tmp/bin/cic-feed" -addr "$addr" -in "$tmp/capture.cf32" -station smoke -cr 3

# Telemetry assertions against the live daemon: liveness/readiness
# probes plus a strict Prometheus text-format validation of /metrics,
# including the per-station labeled series the feed just produced.
dbg=$(sed -n '3p' "$tmp/addr")
[ -n "$dbg" ] || { echo "smoke: FAIL — no debug address in addr-file"; exit 1; }
echo "smoke: probing http://$dbg"
"$tmp/bin/cic-promcheck" -probe "http://$dbg/healthz" -body-contains ok
"$tmp/bin/cic-promcheck" -probe "http://$dbg/readyz" -body-contains ok
"$tmp/bin/cic-promcheck" -metrics "http://$dbg/metrics" \
    -require server_sessions_total,server_frames_ingested,server_packets_published \
    -require server_station_sessions,server_station_frames_ingested \
    -require server_station_bytes_ingested,server_station_packets_published \
    -contains 'server_station_sessions{station="smoke"} 1' \
    -contains 'server_station_frames_ingested{station="smoke"}' \
    -contains 'server_station_packets_published{station="smoke",crc="ok"}'
"$tmp/bin/cic-promcheck" -probe "http://$dbg/debug/flight" -body-contains '"events"'

echo "smoke: draining daemon (SIGTERM)"
kill -TERM "$daemon"
wait "$daemon" || { echo "smoke: daemon exited non-zero"; cat "$tmp/daemon.log"; exit 1; }
daemon=

fail=0
while IFS=, read -r _node _start _snr _cfo hex; do
    if ! grep -q "\"payload\":\"$hex\"" "$tmp/out.ndjson"; then
        echo "smoke: FAIL — ground-truth payload $hex missing from NDJSON"
        fail=1
    fi
done < <(tail -n +2 "$tmp/truth.csv")
if ! grep -q '"ok":true' "$tmp/out.ndjson"; then
    echo "smoke: FAIL — no CRC-verified records"
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    echo "--- truth ---";  cat "$tmp/truth.csv"
    echo "--- ndjson ---"; cat "$tmp/out.ndjson"
    exit 1
fi

# Cross-check: cic-decode -stream over the same capture from stdin must
# find the same payloads with constant memory.
echo "smoke: cross-checking with cic-decode -stream"
"$tmp/bin/cic-decode" -in - -stream -cr 3 < "$tmp/capture.cf32" > "$tmp/decode.out"
while IFS=, read -r _node _start _snr _cfo hex; do
    if ! grep -q "payload=$hex" "$tmp/decode.out"; then
        echo "smoke: FAIL — cic-decode -stream missed payload $hex"
        cat "$tmp/decode.out"
        exit 1
    fi
done < <(tail -n +2 "$tmp/truth.csv")

# Resilience check: kill cic-feed mid-stream, restart it on the same
# station, and assert the resumed session yields every ground-truth
# payload exactly once — no gaps, no duplicates.
echo "smoke: restart-resume — starting fresh cic-gatewayd"
"$tmp/bin/cic-gatewayd" -listen 127.0.0.1:0 -out "$tmp/out2.ndjson" \
    -addr-file "$tmp/addr2" -debug-addr 127.0.0.1:0 -quiet 2> "$tmp/daemon2.log" &
daemon=$!
for _ in $(seq 100); do
    [ -s "$tmp/addr2" ] && break
    sleep 0.1
done
[ -s "$tmp/addr2" ] || { echo "smoke: resume daemon never bound"; cat "$tmp/daemon2.log"; exit 1; }
addr2=$(head -n1 "$tmp/addr2")

# Throttle so the full capture takes ~5s of streaming, then kill the
# feeder mid-stream with SIGKILL (no chance for a clean CLOSE).
samples=$(( $(wc -c < "$tmp/capture.cf32") / 8 ))
rate=$(( samples / 5 ))
echo "smoke: feeding throttled ($rate samples/s), killing mid-stream"
"$tmp/bin/cic-feed" -addr "$addr2" -in "$tmp/capture.cf32" -station resume -cr 3 \
    -rate "$rate" 2> "$tmp/feed1.log" &
feed=$!
sleep 1.5
kill -9 "$feed" 2>/dev/null || true
wait "$feed" 2>/dev/null || true

echo "smoke: restarting cic-feed on the same station"
"$tmp/bin/cic-feed" -addr "$addr2" -in "$tmp/capture.cf32" -station resume -cr 3 \
    2> "$tmp/feed2.log"
grep -q "resuming at sample offset" "$tmp/feed2.log" || {
    echo "smoke: FAIL — restarted cic-feed did not resume a parked session"
    cat "$tmp/feed2.log"
    exit 1
}

# The resume must also show up in the per-station telemetry.
dbg2=$(sed -n '3p' "$tmp/addr2")
echo "smoke: checking resume telemetry on http://$dbg2"
"$tmp/bin/cic-promcheck" -metrics "http://$dbg2/metrics" \
    -require server_station_resumes \
    -contains 'server_station_resumes{station="resume"} 1'

echo "smoke: draining resume daemon (SIGTERM)"
kill -TERM "$daemon"
wait "$daemon" || { echo "smoke: resume daemon exited non-zero"; cat "$tmp/daemon2.log"; exit 1; }
daemon=

fail=0
while IFS=, read -r _node _start _snr _cfo hex; do
    count=$(grep -c "\"payload\":\"$hex\"" "$tmp/out2.ndjson" || true)
    if [ "$count" -ne 1 ]; then
        echo "smoke: FAIL — resumed stream has $count record(s) for payload $hex, want exactly 1"
        fail=1
    fi
done < <(tail -n +2 "$tmp/truth.csv")
if [ "$fail" -ne 0 ]; then
    echo "--- truth ---";   cat "$tmp/truth.csv"
    echo "--- ndjson ---";  cat "$tmp/out2.ndjson"
    echo "--- feed1 ---";   cat "$tmp/feed1.log"
    echo "--- feed2 ---";   cat "$tmp/feed2.log"
    exit 1
fi
echo "smoke: restart-resume OK — gap-free, duplicate-free after mid-stream kill"

# Cluster scenario: two gatewayd shards behind cic-routerd. SIGKILL the
# shard that owns the streaming session; the router must notice within
# the probe window (cluster_backend_healthy → 0, asserted with
# promcheck -await), fail the session over to the survivor via RESUME +
# replay, and the merged NDJSON must still carry every ground-truth
# payload exactly once.
echo "smoke: cluster — starting 2 gatewayd shards"
"$tmp/bin/cic-gatewayd" -listen 127.0.0.1:0 -out "" -pub 127.0.0.1:0 \
    -addr-file "$tmp/b0.addr" -quiet 2> "$tmp/b0.log" &
b0=$!; pids+=("$b0")
"$tmp/bin/cic-gatewayd" -listen 127.0.0.1:0 -out "" -pub 127.0.0.1:0 \
    -addr-file "$tmp/b1.addr" -quiet 2> "$tmp/b1.log" &
b1=$!; pids+=("$b1")
wait_addr_file "$tmp/b0.addr" "$b0" "$tmp/b0.log"
wait_addr_file "$tmp/b1.addr" "$b1" "$tmp/b1.log"

echo "smoke: cluster — starting cic-routerd"
"$tmp/bin/cic-routerd" -listen 127.0.0.1:0 -out "$tmp/router.ndjson" \
    -backend "addr=$(sed -n 1p "$tmp/b0.addr"),name=shard-0,pub=$(sed -n 2p "$tmp/b0.addr")" \
    -backend "addr=$(sed -n 1p "$tmp/b1.addr"),name=shard-1,pub=$(sed -n 2p "$tmp/b1.addr")" \
    -probe-interval 250ms -addr-file "$tmp/router.addr" \
    -debug-addr 127.0.0.1:0 -quiet 2> "$tmp/router.log" &
router=$!; pids+=("$router")
wait_addr_file "$tmp/router.addr" "$router" "$tmp/router.log"
raddr=$(sed -n 1p "$tmp/router.addr")
rdbg=$(sed -n 3p "$tmp/router.addr")

# Throttle the feed so the kill lands mid-stream, with reconnect
# retries so the client rides out the failover window.
samples=$(( $(wc -c < "$tmp/capture.cf32") / 8 ))
rate=$(( samples / 5 ))
echo "smoke: cluster — feeding through the router at $raddr"
"$tmp/bin/cic-feed" -addr "$raddr" -in "$tmp/capture.cf32" -station cluster \
    -cr 3 -rate "$rate" -retries -1 2> "$tmp/feed3.log" &
feed=$!; pids+=("$feed")

"$tmp/bin/cic-promcheck" -metrics "http://$rdbg/metrics" \
    -await 5s -await-interval 100ms \
    -contains 'cluster_sessions_active 1' > /dev/null

if "$tmp/bin/cic-promcheck" -metrics "http://$rdbg/metrics" \
      -contains 'cluster_backend_sessions{backend="shard-0"} 1' > /dev/null 2>&1; then
    victim=$b0; victim_name=shard-0
else
    victim=$b1; victim_name=shard-1
fi
echo "smoke: cluster — SIGKILL $victim_name mid-stream"
kill -9 "$victim"
wait "$victim" 2>/dev/null || true

# Down-detection: the healthy gauge must flip within the probe window.
"$tmp/bin/cic-promcheck" -metrics "http://$rdbg/metrics" \
    -await 3s -await-interval 100ms \
    -contains "cluster_backend_healthy{backend=\"$victim_name\"} 0"

echo "smoke: cluster — waiting for the feed to complete through the failover"
if ! wait "$feed"; then
    echo "smoke: FAIL — cic-feed did not survive the backend kill"
    cat "$tmp/feed3.log"; cat "$tmp/router.log"
    exit 1
fi
"$tmp/bin/cic-promcheck" -metrics "http://$rdbg/metrics" \
    -require cluster_failovers_total,cluster_replayed_samples,cluster_records_relayed \
    -contains "cluster_failovers_total{backend=\"$victim_name\"}" > /dev/null

echo "smoke: cluster — draining router and surviving shard"
kill -TERM "$router"
wait "$router" || { echo "smoke: router exited non-zero"; cat "$tmp/router.log"; exit 1; }
for p in "$b0" "$b1"; do
    [ "$p" = "$victim" ] && continue
    kill -TERM "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
done
pids=()

fail=0
while IFS=, read -r _node _start _snr _cfo hex; do
    count=$(grep -c "\"payload\":\"$hex\"" "$tmp/router.ndjson" || true)
    if [ "$count" -ne 1 ]; then
        echo "smoke: FAIL — cluster stream has $count record(s) for payload $hex, want exactly 1"
        fail=1
    fi
done < <(tail -n +2 "$tmp/truth.csv")
if [ "$fail" -ne 0 ]; then
    echo "--- truth ---";   cat "$tmp/truth.csv"
    echo "--- ndjson ---";  cat "$tmp/router.ndjson"
    echo "--- router ---";  cat "$tmp/router.log"
    echo "--- feed ---";    cat "$tmp/feed3.log"
    exit 1
fi
echo "smoke: cluster OK — exactly-once through a $victim_name kill + failover"

echo "smoke: OK — $(wc -l < "$tmp/out.ndjson") NDJSON record(s) delivered"
