package cic_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"cic"
)

// streamTrace builds a three-packet collision trace plus a quiet tail long
// enough for the gateway to pass every packet's end.
func streamTrace(t testing.TB, cfg cic.Config) ([]complex128, [][]byte) {
	t.Helper()
	sym := int64(cfg.SamplesPerSymbol())
	payloads := [][]byte{
		[]byte("parity packet alpha"),
		[]byte("parity packet bravo"),
		[]byte("parity packet charl"),
	}
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payloads[0], StartSample: 4096, SNR: 27, CFO: 1500},
		{Payload: payloads[1], StartSample: 4096 + 13*sym + 211, SNR: 24, CFO: -2400},
		{Payload: payloads[2], StartSample: 4096 + 26*sym + 97, SNR: 25, CFO: 800},
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)
	return iq, payloads
}

// streamThrough pushes iq through a gateway in rng-sized chunks and
// returns everything delivered on Packets().
func streamThrough(t testing.TB, cfg cic.Config, iq []complex128, rng *rand.Rand, options ...cic.Option) []cic.Packet {
	t.Helper()
	gw, err := cic.NewGateway(cfg, options...)
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)
	for off := 0; off < len(iq); {
		end := off + 1 + rng.Intn(3*cfg.SamplesPerSymbol())
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}

// TestGatewayStreamBatchParity: the same collision trace pushed through the
// Gateway in random-sized chunks must yield the same payload set and order
// as Receiver.DecodeBuffer, at any worker count.
func TestGatewayStreamBatchParity(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3 // tolerate a marginal ±1-bin slip, as the batch tests do
	iq, _ := streamTrace(t, cfg)

	recv, err := cic.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := recv.DecodeBuffer(iq)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for _, p := range batch {
		if p.OK {
			want = append(want, p.Payload)
		}
	}
	if len(want) != 3 {
		t.Fatalf("batch receiver decoded %d/3 packets", len(want))
	}

	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(7))
		all := streamThrough(t, cfg, iq, rng, cic.WithWorkers(workers))
		var got [][]byte
		for _, p := range all {
			if p.OK {
				got = append(got, p.Payload)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: gateway decoded %d packets, batch %d", workers, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("workers=%d: packet %d payload %q, batch %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestGatewayWorkerParity: a multi-worker gateway must deliver output
// byte-identical (order, payloads, metadata) to the single-worker serial
// path — the reorder buffer restores dispatch order exactly.
func TestGatewayWorkerParity(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq, _ := streamTrace(t, cfg)

	serial := streamThrough(t, cfg, iq, rand.New(rand.NewSource(11)), cic.WithWorkers(1))
	if len(serial) == 0 {
		t.Fatal("serial gateway delivered nothing")
	}
	for _, workers := range []int{2, 4} {
		par := streamThrough(t, cfg, iq, rand.New(rand.NewSource(11)), cic.WithWorkers(workers))
		if len(par) != len(serial) {
			t.Fatalf("workers=%d delivered %d packets, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			a, b := serial[i], par[i]
			if a.Start != b.Start || a.OK != b.OK || !bytes.Equal(a.Payload, b.Payload) ||
				a.SNR != b.SNR || a.CFO != b.CFO || a.FECCorrected != b.FECCorrected {
				t.Errorf("workers=%d: packet %d differs: serial %+v parallel %+v", workers, i, a, b)
			}
		}
	}
}

// TestGatewayConcurrentWriteClose is the -race regression for the
// Gateway.closed data race: Write, Close, BufferedSamples and Packets
// consumption all run concurrently.
func TestGatewayConcurrentWriteClose(t *testing.T) {
	cfg := cic.DefaultConfig()
	gw, err := cic.NewGateway(cfg, cic.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)

	var wg sync.WaitGroup
	wrote := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]complex128, 4096)
		var once sync.Once
		for {
			if _, err := gw.Write(chunk); err != nil {
				if !errors.Is(err, cic.ErrGatewayClosed) {
					t.Errorf("Write: %v", err)
				}
				return
			}
			once.Do(func() { close(wrote) })
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if gw.BufferedSamples() < 0 {
				t.Error("negative buffered sample count")
				return
			}
		}
	}()
	<-wrote
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	wg.Wait()
	<-done
}

// TestGatewayWithWorkersPlumbed: NewGateway must honour WithWorkers rather
// than silently ignoring it.
func TestGatewayWithWorkersPlumbed(t *testing.T) {
	gw, err := cic.NewGateway(cic.DefaultConfig(), cic.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	go func() {
		for range gw.Packets() {
		}
	}()
	if got := gw.Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}
