// Command cic-gen synthesises LoRa collision captures as .cf32 IQ files
// (interleaved little-endian float32, GNU Radio convention), with the
// ground truth printed as CSV on stdout.
//
// Usage:
//
//	cic-gen -out capture.cf32 [flags]
//
// Two generation modes:
//
//   - explicit packets: -packets N places N packets with random payloads at
//     staggered, overlapping starts — a deterministic multi-packet
//     collision for decoder testing;
//   - deployment traffic: -deployment D1..D4 -rate R -seconds S generates
//     Poisson traffic across the deployment's 20 nodes, as in the paper's
//     evaluation (§7.1).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cic"
	"cic/internal/eval"
	"cic/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out        = flag.String("out", "", "output .cf32 path (required)")
		sf         = flag.Int("sf", 8, "spreading factor")
		bw         = flag.Float64("bw", 250e3, "bandwidth Hz")
		osr        = flag.Int("osr", 4, "oversampling ratio")
		cr         = flag.Int("cr", 1, "coding rate 1..4 (4/5..4/8)")
		payloadLen = flag.Int("payload", 28, "payload bytes")
		packets    = flag.Int("packets", 3, "number of colliding packets (explicit mode)")
		stagger    = flag.Float64("stagger", 15, "packet stagger in symbols (explicit mode)")
		snr        = flag.Float64("snr", 25, "SNR dB (explicit mode)")
		deployment = flag.String("deployment", "", "deployment D1..D4 (traffic mode)")
		rate       = flag.Float64("rate", 40, "aggregate offered load pkts/s (traffic mode)")
		seconds    = flag.Float64("seconds", 2, "traffic duration (traffic mode)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = *sf
	cfg.Bandwidth = *bw
	cfg.Oversampling = *osr
	cfg.CodingRate = *cr
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *deployment != "" {
		return trafficMode(cfg, *deployment, *rate, *seconds, *payloadLen, *seed, *out)
	}
	return explicitMode(cfg, *packets, *stagger, *snr, *payloadLen, *seed, *out)
}

func explicitMode(cfg cic.Config, packets int, stagger, snr float64, payloadLen int, seed int64, out string) error {
	rng := rand.New(rand.NewSource(seed))
	symSamples := int64(cfg.SamplesPerSymbol())
	var ems []cic.Emission
	for i := 0; i < packets; i++ {
		payload := make([]byte, payloadLen)
		rng.Read(payload)
		ems = append(ems, cic.Emission{
			Payload:     payload,
			StartSample: 4096 + int64(float64(i)*stagger*float64(symSamples)) + int64(rng.Intn(int(symSamples))),
			SNR:         snr,
			CFO:         (2*rng.Float64() - 1) * 9150, // ±10 ppm at 915 MHz
		})
	}
	src, err := cic.SimulateCollision(cfg, ems, seed)
	if err != nil {
		return err
	}
	// Ground truth starts are file-relative (the cf32 file's first sample
	// is the span start).
	base, _ := src.Span()
	fmt.Println("node,start_sample,snr_db,cfo_hz,payload_hex")
	for i, e := range ems {
		fmt.Printf("%d,%d,%.1f,%.0f,%x\n", i, e.StartSample-base, e.SNR, e.CFO, e.Payload)
	}
	return cic.WriteCF32File(out, cic.Samples(src))
}

func trafficMode(cfg cic.Config, depName string, rate, seconds float64, payloadLen int, seed int64, out string) error {
	dep, err := sim.DeploymentByName(depName)
	if err != nil {
		return err
	}
	ecfg := eval.DefaultConfig()
	ecfg.Frame.Chirp.SF = cfg.SpreadingFactor
	ecfg.Frame.Chirp.Bandwidth = cfg.Bandwidth
	ecfg.Frame.Chirp.OSR = cfg.Oversampling
	ecfg.Frame.PHY.SF = cfg.SpreadingFactor
	nw, err := sim.NewNetwork(ecfg.Frame, dep, seed)
	if err != nil {
		return err
	}
	run, err := nw.BuildRun(rate, seconds, payloadLen, seed)
	if err != nil {
		return err
	}
	start, end := run.Source.Span()
	fmt.Println("node,start_sample,payload_hex")
	for _, tx := range run.Truth {
		fmt.Printf("%d,%d,%x\n", tx.Node, tx.StartSample-start, tx.Payload)
	}
	buf := make([]complex128, end-start)
	run.Source.Read(buf, start)
	return cic.WriteCF32File(out, buf)
}
