package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkGatewayStream/workers=4-8  5  1234.5 ns/op  7.5 MB/s  12 B/op  3 allocs/op"
	res, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("valid line rejected")
	}
	if res.Name != "BenchmarkGatewayStream/workers=4" {
		t.Errorf("name %q", res.Name)
	}
	if res.Iterations != 5 || res.NsPerOp != 1234.5 || res.MBPerSec != 7.5 ||
		res.BytesPerOp != 12 || res.AllocsPerOp != 3 {
		t.Errorf("fields: %+v", res)
	}
	for _, bad := range []string{
		"",
		"PASS",
		"ok  \tcic\t1.2s",
		"BenchmarkX-8 notanumber 1 ns/op",
		"BenchmarkX-8 5 xyz ns/op",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

// FuzzParseBenchLine hardens the benchmark-output parser against
// arbitrary text: `go test -bench` output is unstructured, and a daemon
// log or a partial pipe write can hand it any byte sequence. The parser
// must stay total (no panics), deterministic, and only accept lines
// that actually carry a ns/op measurement.
func FuzzParseBenchLine(f *testing.F) {
	f.Add("BenchmarkFFT1024-8  100  50.1 ns/op")
	f.Add("BenchmarkGatewayStream/workers=1-8 3 2.5 ns/op 1.1 MB/s 0 B/op 0 allocs/op")
	f.Add("BenchmarkOverhead-4 10 9 ns/op 1.5 overhead_% 0.5 decoded/op")
	f.Add("BenchmarkX- 1 2 ns/op")
	f.Add("goos: linux")
	f.Add("  \t  ")
	f.Add("BenchmarkY-8 9223372036854775807 1 ns/op")
	f.Fuzz(func(t *testing.T, line string) {
		res, ok := parseBenchLine(line)
		res2, ok2 := parseBenchLine(line)
		if ok != ok2 || res != res2 {
			t.Fatalf("non-deterministic parse of %q", line)
		}
		if !ok {
			return
		}
		if res.NsPerOp == 0 {
			t.Errorf("accepted %q without ns/op", line)
		}
		if res.Name == "" {
			t.Errorf("accepted %q with empty name", line)
		}
		if strings.ContainsAny(res.Name, " \t\n") {
			t.Errorf("name %q contains whitespace (line %q)", res.Name, line)
		}
	})
}
