// Command cic-bench converts `go test -bench` output on stdin into the
// JSON shape used by the repository's BENCH_*.json records (see
// BENCH_gateway.json). It parses the standard benchmark result lines plus
// any custom metrics reported via b.ReportMetric (samples/sec,
// overhead_%, decoded/op, ...), and stamps the host environment.
//
// Usage:
//
//	go test -run '^$' -bench GatewayStream -benchtime=5x ./ | cic-bench -out BENCH_gateway.json
//
// With -gate it runs in regression-gate mode instead of record mode: the
// fresh bench output on stdin is compared against a committed BENCH_*.json
// record and the process exits non-zero when a benchmark's allocs/op grows
// past the committed value's slack (default max(+10%, +5) — allocation
// counts are deterministic, so this gate is CI-safe on any machine).
// Wall-clock gating is off by default because ns/op depends on the host;
// enable it locally with -gate-time-ratio.
//
//	go test -run '^$' -bench GatewayStream -benchtime=10x ./ | cic-bench -gate BENCH_gateway.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`

	// Optional metrics, present when the benchmark reports them.
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	MBPerSec      float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	OverheadPct   float64 `json:"overhead_pct,omitempty"`
	DecodedPerOp  float64 `json:"decoded_per_op,omitempty"`
}

type record struct {
	Benchmark   string         `json:"benchmark"`
	Description string         `json:"description"`
	Recorded    string         `json:"recorded"`
	Environment map[string]any `json:"environment"`
	Results     []result       `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchmark = flag.String("benchmark", "BenchmarkGatewayStream", "benchmark family name for the record header")
		desc      = flag.String("description", "Streaming ingest throughput through the Gateway's pipelined decode path on a 3-packet-collision trace (make bench-json).", "record description")
		note      = flag.String("note", "", "free-form environment note")
		out       = flag.String("out", "", "output path (default stdout)")

		gate          = flag.String("gate", "", "committed BENCH_*.json to gate fresh stdin results against (regression-gate mode; no record is written)")
		gateSlackPct  = flag.Float64("gate-alloc-slack-pct", 10, "allowed allocs/op growth over the committed value, percent")
		gateSlackAbs  = flag.Int64("gate-alloc-slack-abs", 5, "allowed allocs/op growth over the committed value, absolute (the effective budget is the larger of the two slacks)")
		gateTimeRatio = flag.Float64("gate-time-ratio", 0, "when >0, fail if ns/op exceeds the committed ns/op by more than this factor (machine-sensitive; off by default)")
	)
	flag.Parse()

	rec := record{
		Benchmark:   *benchmark,
		Description: *desc,
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
	}
	if *note != "" {
		rec.Environment["note"] = *note
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the tool can sit at the end of a pipe
		// without hiding failures.
		fmt.Fprintln(os.Stderr, line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.Environment["cpu"] = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if ok {
			rec.Results = append(rec.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rec.Results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	if *gate != "" {
		return runGate(*gate, rec.Results, *gateSlackPct, *gateSlackAbs, *gateTimeRatio)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// runGate compares fresh results against the committed record at path.
// The authoritative check is allocs/op: Go's allocation accounting is
// deterministic per code path, so the budget
// max(committed*(1+slackPct/100), committed+slackAbs) catches real
// regressions without flaking across CI hosts. When timeRatio > 0 a
// wall-clock check (ns/op <= committed*timeRatio) is applied as well.
func runGate(path string, fresh []result, slackPct float64, slackAbs int64, timeRatio float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base record
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	committed := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		committed[r.Name] = r
	}

	var failures []string
	checked := 0
	for _, n := range fresh {
		o, ok := committed[n.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "gate: %-45s not in %s (new benchmark, skipped)\n", n.Name, path)
			continue
		}
		checked++
		budget := int64(float64(o.AllocsPerOp) * (1 + slackPct/100))
		if abs := o.AllocsPerOp + slackAbs; abs > budget {
			budget = abs
		}
		if n.AllocsPerOp > budget {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, committed %d (budget %d)",
				n.Name, n.AllocsPerOp, o.AllocsPerOp, budget))
		} else {
			fmt.Fprintf(os.Stderr, "gate: %-45s %6d allocs/op (budget %d) ok\n", n.Name, n.AllocsPerOp, budget)
		}
		if timeRatio > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*timeRatio {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op, committed %.0f (ratio limit %.2fx)",
				n.Name, n.NsPerOp, o.NsPerOp, timeRatio))
		}
	}
	if checked == 0 {
		return fmt.Errorf("gate: no stdin benchmark overlaps %s — wrong -bench filter or stale record", path)
	}
	for _, o := range base.Results {
		found := false
		for _, n := range fresh {
			if n.Name == o.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "gate: %-45s in %s but not exercised this run\n", o.Name, path)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "gate: REGRESSION:", f)
		}
		return fmt.Errorf("gate: %d regression(s) vs %s", len(failures), path)
	}
	fmt.Fprintf(os.Stderr, "gate: %d benchmark(s) within budget of %s\n", checked, path)
	return nil
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// result line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix Go appends to benchmark names.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		case "samples/sec":
			res.SamplesPerSec = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "overhead_%":
			res.OverheadPct = v
		case "decoded/op":
			res.DecodedPerOp = v
		}
	}
	return res, res.NsPerOp != 0
}
