// Command cic-bench converts `go test -bench` output on stdin into the
// JSON shape used by the repository's BENCH_*.json records (see
// BENCH_gateway.json). It parses the standard benchmark result lines plus
// any custom metrics reported via b.ReportMetric (samples/sec,
// overhead_%, decoded/op, ...), and stamps the host environment.
//
// Usage:
//
//	go test -run '^$' -bench GatewayStream -benchtime=5x ./ | cic-bench -out BENCH_gateway.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`

	// Optional metrics, present when the benchmark reports them.
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	MBPerSec      float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	OverheadPct   float64 `json:"overhead_pct,omitempty"`
	DecodedPerOp  float64 `json:"decoded_per_op,omitempty"`
}

type record struct {
	Benchmark   string         `json:"benchmark"`
	Description string         `json:"description"`
	Recorded    string         `json:"recorded"`
	Environment map[string]any `json:"environment"`
	Results     []result       `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchmark = flag.String("benchmark", "BenchmarkGatewayStream", "benchmark family name for the record header")
		desc      = flag.String("description", "Streaming ingest throughput through the Gateway's pipelined decode path on a 3-packet-collision trace (make bench-json).", "record description")
		note      = flag.String("note", "", "free-form environment note")
		out       = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	rec := record{
		Benchmark:   *benchmark,
		Description: *desc,
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
	}
	if *note != "" {
		rec.Environment["note"] = *note
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the tool can sit at the end of a pipe
		// without hiding failures.
		fmt.Fprintln(os.Stderr, line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.Environment["cpu"] = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if ok {
			rec.Results = append(rec.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rec.Results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// result line.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix Go appends to benchmark names.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		case "samples/sec":
			res.SamplesPerSec = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "overhead_%":
			res.OverheadPct = v
		case "decoded/op":
			res.DecodedPerOp = v
		}
	}
	return res, res.NsPerOp != 0
}
