// Command cic-routerd is the CIC fleet frontend: it speaks the same v2
// wire protocol as cic-gatewayd, consistently hashes each station onto
// one of a configured set of gatewayd backends, and proxies the session
// upstream. The fleet is self-healing — per-backend health probes and
// circuit breakers, failover that replays a failed session onto a
// replacement shard via RESUME, per-shard overload shedding with
// retry-after propagation, and drain-based rebalancing when the backend
// set changes. docs/SERVER.md ("Cluster mode") is the walkthrough.
//
// Usage:
//
//	cic-routerd -listen 127.0.0.1:7732 \
//	            -backend 127.0.0.1:7733 \
//	            -backend "addr=127.0.0.1:7743,name=b2,ready=http://127.0.0.1:9743/readyz,pub=127.0.0.1:8743" \
//	            [-pub addr] [-out path|-] [-max-sessions N]
//	            [-retain-cap samples] [-park-timeout d] [-idle-timeout d]
//	            [-probe-interval d] [-breaker-base d] [-breaker-max d]
//	            [-debug-addr addr] [-addr-file path] [-fault-spec spec]
//	            [-log-level level] [-log-format text|json] [-seed N]
//
// Each -backend is either a bare ingest address or a comma-separated
// k=v form with keys addr (required), name (metrics/log label), ready
// (a /readyz URL to probe; TCP dial of addr otherwise) and pub (the
// backend's NDJSON address; when set the router merges that backend's
// records into its own -out/-pub stream, deduplicated across failover).
//
// -fault-spec uses the per-leg grammar of internal/fault: '|'-separated
// specs, each optionally tagged leg=client (accepted connections, the
// default) or leg=upstream (the router→backend dials). Offsets count
// bytes per leg. Never set in production.
//
// The debug endpoint serves /metrics (cluster_* families), /healthz and
// /readyz (ready = accepting, with at least one available backend and
// session capacity).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cic"
	"cic/internal/cluster"
	"cic/internal/fault"
	"cic/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-routerd:", err)
		os.Exit(1)
	}
}

// backendFlags collects repeatable -backend values.
type backendFlags []cluster.BackendSpec

func (b *backendFlags) String() string { return fmt.Sprintf("%d backends", len(*b)) }

func (b *backendFlags) Set(v string) error {
	spec, err := parseBackendSpec(v)
	if err != nil {
		return err
	}
	*b = append(*b, spec)
	return nil
}

// parseBackendSpec parses one -backend value: a bare "host:port", or
// "addr=host:port[,name=...][,ready=URL][,pub=host:port]".
func parseBackendSpec(v string) (cluster.BackendSpec, error) {
	var spec cluster.BackendSpec
	if !strings.Contains(v, "=") {
		spec.Addr = strings.TrimSpace(v)
		if spec.Addr == "" {
			return spec, fmt.Errorf("empty backend address")
		}
		return spec, nil
	}
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, val, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("backend spec %q: want k=v, got %q", v, part)
		}
		switch k {
		case "addr":
			spec.Addr = val
		case "name":
			spec.Name = val
		case "ready":
			spec.ReadyURL = val
		case "pub":
			spec.PubAddr = val
		default:
			return spec, fmt.Errorf("backend spec %q: unknown key %q (want addr, name, ready or pub)", v, k)
		}
	}
	if spec.Addr == "" {
		return spec, fmt.Errorf("backend spec %q: addr= is required", v)
	}
	return spec, nil
}

func run() error {
	var backends backendFlags
	var (
		listen        = flag.String("listen", "127.0.0.1:7732", "client ingestion listen address")
		pub           = flag.String("pub", "", "merged NDJSON subscriber listen address (disabled when empty)")
		out           = flag.String("out", "-", `merged NDJSON output: "-" for stdout, a file path, or "" for none`)
		maxSessions   = flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent routed sessions, parked included (-1 = unlimited)")
		retainCap     = flag.Int64("retain-cap", cluster.DefaultRetainCap, "per-session replay retention in samples (-1 = unlimited; trimming makes failover lossy)")
		idleTimeout   = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "close client sessions idle for this long (-1s = never)")
		parkTimeout   = flag.Duration("park-timeout", server.DefaultParkTimeout, "resume window for disconnected resumable sessions (-1s = disable parking)")
		probeInterval = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "backend health-probe period")
		breakerBase   = flag.Duration("breaker-base", cluster.DefaultBreakerBase, "backend circuit-breaker base open window")
		breakerMax    = flag.Duration("breaker-max", cluster.DefaultBreakerMax, "backend circuit-breaker max open window")
		closeTimeout  = flag.Duration("close-timeout", cluster.DefaultCloseTimeout, "bound on one backend drain handshake")
		seed          = flag.Int64("seed", 1, "breaker jitter seed (deterministic backoff)")
		faultSpec     = flag.String("fault-spec", "", `DEV ONLY: per-leg fault injection, e.g. "leg=client;drop@65536|leg=upstream;corrupt@1024:0x20"`)
		debugAddr     = flag.String("debug-addr", "", "serve /metrics, /healthz and /readyz on this address")
		addrFile      = flag.String("addr-file", "", "write the bound ingestion, pub and debug addresses (one per line) to this file once listening")
		quiet         = flag.Bool("quiet", false, "suppress per-session logging")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat     = flag.String("log-format", "text", `log encoding: "text" or "json" (structured NDJSON)`)
	)
	flag.Var(&backends, "backend", "backend gatewayd (repeatable): addr, or addr=...,name=...,ready=...,pub=...")
	flag.Parse()

	if len(backends) == 0 {
		return fmt.Errorf("at least one -backend is required")
	}

	reg := cic.NewMetrics()
	var writers []io.Writer
	switch *out {
	case "":
	case "-":
		writers = append(writers, os.Stdout)
	default:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	sink := server.NewFanout(writers...)

	logger, err := buildLogger(*logLevel, *logFormat, *quiet)
	if err != nil {
		return err
	}

	var wrapConn, wrapUpstream func(net.Conn) net.Conn
	if *faultSpec != "" {
		ms, err := fault.ParseMultiSpec(*faultSpec)
		if err != nil {
			return fmt.Errorf("-fault-spec: %w", err)
		}
		for _, sp := range ms {
			if leg := sp.LegName(); leg != "client" && leg != "upstream" {
				return fmt.Errorf("-fault-spec: unknown leg %q (want client or upstream)", leg)
			}
		}
		faults := reg.Counter(server.MetricFaultsInjected)
		wrapLeg := func(sp *fault.Spec) func(net.Conn) net.Conn {
			if sp == nil {
				return nil
			}
			var idx atomic.Int64
			return func(c net.Conn) net.Conn {
				sched := sp.Schedule(int(idx.Add(1) - 1))
				if len(sched.Read) == 0 && len(sched.Write) == 0 {
					return c
				}
				return fault.WrapConn(c, sched, func(fault.Event) { faults.Inc() })
			}
		}
		wrapConn = wrapLeg(ms.ForLeg("client"))
		wrapUpstream = wrapLeg(ms.ForLeg("upstream"))
		fmt.Fprintf(os.Stderr, "cic-routerd: FAULT INJECTION ACTIVE (%d leg specs) — dev use only\n", len(ms))
	}

	router := cluster.New(cluster.Config{
		Backends:      backends,
		MaxSessions:   *maxSessions,
		RetainCap:     *retainCap,
		IdleTimeout:   *idleTimeout,
		ParkTimeout:   *parkTimeout,
		ProbeInterval: *probeInterval,
		BreakerBase:   *breakerBase,
		BreakerMax:    *breakerMax,
		CloseTimeout:  *closeTimeout,
		Seed:          *seed,
		Metrics:       reg,
		Sink:          sink,
		WrapConn:      wrapConn,
		WrapUpstream:  wrapUpstream,
		Log:           logger,
	})

	dataLn, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var pubLn net.Listener
	pubAddr := ""
	if *pub != "" {
		if pubLn, err = net.Listen("tcp", *pub); err != nil {
			return err
		}
		pubAddr = pubLn.Addr().String()
	}
	dbgAddr := ""
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", cic.DebugHandler(reg, nil))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			if err := router.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		dbgLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dbgAddr = dbgLn.Addr().String()
		go func() {
			if err := http.Serve(dbgLn, mux); err != nil {
				fmt.Fprintln(os.Stderr, "cic-routerd: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cic-routerd: debug endpoint on http://%s/metrics\n", dbgAddr)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(dataLn.Addr().String()+"\n"+pubAddr+"\n"+dbgAddr+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cic-routerd: routing on %s across %d backends", dataLn.Addr(), len(backends))
	if pubAddr != "" {
		fmt.Fprintf(os.Stderr, ", publishing on %s", pubAddr)
	}
	fmt.Fprintln(os.Stderr)

	errc := make(chan error, 2)
	go func() { errc <- router.Serve(dataLn) }()
	if pubLn != nil {
		go func() { errc <- router.ServePub(pubLn) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cic-routerd: %v — draining\n", sig)
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "cic-routerd: drained")
	return nil
}

// buildLogger assembles the daemon's structured logger from the
// -log-level / -log-format / -quiet flags. A nil logger means silent.
func buildLogger(level, format string, quiet bool) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level: unknown level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (want text or json)", format)
	}
}
