// Command cic-gatewayd is the CIC network ingestion daemon: it serves
// many concurrent IQ streams over TCP, runs one streaming cic.Gateway
// per connection, and publishes every decoded packet as NDJSON — to
// stdout, to a file, and to TCP subscribers. docs/SERVER.md documents
// the wire protocol and a full walkthrough.
//
// Usage:
//
//	cic-gatewayd -listen 127.0.0.1:7733 [-pub addr] [-out path|-]
//	             [-max-sessions N] [-mem-budget bytes] [-idle-timeout d]
//	             [-park-timeout d] [-decode-timeout d] [-workers N]
//	             [-debug-addr addr] [-addr-file path] [-fault-spec spec]
//	             [-log-level level] [-log-format text|json]
//	             [-flight N] [-station-series N]
//
// The debug endpoint (-debug-addr) serves /metrics (JSON, or Prometheus
// text exposition under content negotiation), /healthz (liveness),
// /readyz (readiness = admission control not shedding), /debug/flight
// (the decode flight recorder) and /debug/pprof.
//
// -fault-spec enables the development fault injector: every accepted
// ingestion connection is wrapped with a deterministic, seeded fault
// schedule (connection drops, stalls, byte corruption, partial writes
// at exact byte offsets — see internal/fault). Never set in production.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// flushes every session's Gateway so no fully-buffered packet is lost,
// publishes the results, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cic"
	"cic/internal/fault"
	"cic/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-gatewayd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:7733", "ingestion listen address")
		pub         = flag.String("pub", "", "NDJSON subscriber listen address (disabled when empty)")
		out         = flag.String("out", "-", `NDJSON output: "-" for stdout, a file path, or "" for none`)
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent ingestion sessions (-1 = unlimited)")
		memBudget   = flag.Int64("mem-budget", server.DefaultMemoryBudget, "session memory budget in bytes (-1 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "close sessions idle for this long (-1s = never)")
		parkTimeout = flag.Duration("park-timeout", server.DefaultParkTimeout, "resume window for disconnected resumable sessions (-1s = disable parking)")
		decodeTO    = flag.Duration("decode-timeout", server.DefaultDecodeTimeout, "per-IQ-frame decode admission deadline (-1s = unbounded)")
		workers     = flag.Int("workers", server.DefaultWorkers(), "decode workers per session")
		faultSpec   = flag.String("fault-spec", "", "DEV ONLY: inject deterministic connection faults, e.g. \"seed=42;every=2;drop@65536;stall@4096r:50ms\"")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/flight, /debug/vars and /debug/pprof on this address")
		addrFile    = flag.String("addr-file", "", "write the bound ingestion and pub addresses (one per line) to this file once listening")
		quiet       = flag.Bool("quiet", false, "suppress per-connection logging")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", `log encoding: "text" or "json" (structured NDJSON)`)
		flightSize  = flag.Int("flight", 1024, "decode flight-recorder capacity in events (0 = disabled)")
		stationCap  = flag.Int("station-series", 0, "max live stations per labeled metric family (0 = default cap)")
	)
	flag.Parse()

	reg := cic.NewMetrics()
	var writers []io.Writer
	switch *out {
	case "":
	case "-":
		writers = append(writers, os.Stdout)
	default:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	sink := server.NewFanout(writers...)

	logger, err := buildLogger(*logLevel, *logFormat, *quiet)
	if err != nil {
		return err
	}
	var flight *cic.FlightRecorder
	if *flightSize > 0 {
		flight = cic.NewFlightRecorder(*flightSize)
	}
	var wrapConn func(net.Conn) net.Conn
	if *faultSpec != "" {
		ms, err := fault.ParseMultiSpec(*faultSpec)
		if err != nil {
			return fmt.Errorf("-fault-spec: %w", err)
		}
		for _, sp := range ms {
			if sp.LegName() != "client" {
				return fmt.Errorf("-fault-spec: leg %q is not a cic-gatewayd leg (the daemon only has the client leg; leg=upstream belongs to cic-routerd)", sp.LegName())
			}
		}
		spec := ms.ForLeg("client")
		faults := reg.Counter(server.MetricFaultsInjected)
		var connIdx atomic.Int64
		wrapConn = func(c net.Conn) net.Conn {
			sched := spec.Schedule(int(connIdx.Add(1) - 1))
			if len(sched.Read) == 0 && len(sched.Write) == 0 {
				return c
			}
			return fault.WrapConn(c, sched, func(fault.Event) { faults.Inc() })
		}
		fmt.Fprintf(os.Stderr, "cic-gatewayd: FAULT INJECTION ACTIVE (%s) — dev use only\n", spec)
	}
	srv := server.New(server.Config{
		MaxSessions:      *maxSessions,
		MemoryBudget:     *memBudget,
		IdleTimeout:      *idleTimeout,
		ParkTimeout:      *parkTimeout,
		DecodeTimeout:    *decodeTO,
		Workers:          *workers,
		Metrics:          reg,
		Sink:             sink,
		WrapConn:         wrapConn,
		Log:              logger,
		Flight:           flight,
		MaxStationSeries: *stationCap,
	})

	dataLn, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var pubLn net.Listener
	pubAddr := ""
	if *pub != "" {
		if pubLn, err = net.Listen("tcp", *pub); err != nil {
			return err
		}
		pubAddr = pubLn.Addr().String()
	}
	dbgAddr := ""
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", cic.DebugHandler(reg, flight))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			if err := srv.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		// Listen explicitly (rather than ListenAndServe) so a :0 debug
		// address resolves to a real port we can report in the addr-file.
		dbgLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dbgAddr = dbgLn.Addr().String()
		go func() {
			if err := http.Serve(dbgLn, mux); err != nil {
				fmt.Fprintln(os.Stderr, "cic-gatewayd: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cic-gatewayd: debug endpoint on http://%s/metrics\n", dbgAddr)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(dataLn.Addr().String()+"\n"+pubAddr+"\n"+dbgAddr+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cic-gatewayd: ingesting on %s", dataLn.Addr())
	if pubAddr != "" {
		fmt.Fprintf(os.Stderr, ", publishing on %s", pubAddr)
	}
	fmt.Fprintln(os.Stderr)

	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(dataLn) }()
	if pubLn != nil {
		go func() { errc <- srv.ServePub(pubLn) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cic-gatewayd: %v — draining\n", sig)
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "cic-gatewayd: drained")
	return nil
}

// buildLogger assembles the daemon's structured logger from the
// -log-level / -log-format / -quiet flags. A nil logger means silent.
func buildLogger(level, format string, quiet bool) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level: unknown level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (want text or json)", format)
	}
}
