// Command cic-gatewayd is the CIC network ingestion daemon: it serves
// many concurrent IQ streams over TCP, runs one streaming cic.Gateway
// per connection, and publishes every decoded packet as NDJSON — to
// stdout, to a file, and to TCP subscribers. docs/SERVER.md documents
// the wire protocol and a full walkthrough.
//
// Usage:
//
//	cic-gatewayd -listen 127.0.0.1:7733 [-pub addr] [-out path|-]
//	             [-max-sessions N] [-mem-budget bytes] [-idle-timeout d]
//	             [-park-timeout d] [-decode-timeout d] [-workers N]
//	             [-debug-addr addr] [-addr-file path] [-fault-spec spec]
//
// -fault-spec enables the development fault injector: every accepted
// ingestion connection is wrapped with a deterministic, seeded fault
// schedule (connection drops, stalls, byte corruption, partial writes
// at exact byte offsets — see internal/fault). Never set in production.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// flushes every session's Gateway so no fully-buffered packet is lost,
// publishes the results, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"cic"
	"cic/internal/fault"
	"cic/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-gatewayd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:7733", "ingestion listen address")
		pub         = flag.String("pub", "", "NDJSON subscriber listen address (disabled when empty)")
		out         = flag.String("out", "-", `NDJSON output: "-" for stdout, a file path, or "" for none`)
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "max concurrent ingestion sessions (-1 = unlimited)")
		memBudget   = flag.Int64("mem-budget", server.DefaultMemoryBudget, "session memory budget in bytes (-1 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "close sessions idle for this long (-1s = never)")
		parkTimeout = flag.Duration("park-timeout", server.DefaultParkTimeout, "resume window for disconnected resumable sessions (-1s = disable parking)")
		decodeTO    = flag.Duration("decode-timeout", server.DefaultDecodeTimeout, "per-IQ-frame decode admission deadline (-1s = unbounded)")
		workers     = flag.Int("workers", server.DefaultWorkers(), "decode workers per session")
		faultSpec   = flag.String("fault-spec", "", "DEV ONLY: inject deterministic connection faults, e.g. \"seed=42;every=2;drop@65536;stall@4096r:50ms\"")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		addrFile    = flag.String("addr-file", "", "write the bound ingestion and pub addresses (one per line) to this file once listening")
		quiet       = flag.Bool("quiet", false, "suppress per-connection logging")
	)
	flag.Parse()

	reg := cic.NewMetrics()
	var writers []io.Writer
	switch *out {
	case "":
	case "-":
		writers = append(writers, os.Stdout)
	default:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	sink := server.NewFanout(writers...)

	logf := log.New(os.Stderr, "cic-gatewayd: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	var wrapConn func(net.Conn) net.Conn
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			return fmt.Errorf("-fault-spec: %w", err)
		}
		faults := reg.Counter(server.MetricFaultsInjected)
		var connIdx atomic.Int64
		wrapConn = func(c net.Conn) net.Conn {
			sched := spec.Schedule(int(connIdx.Add(1) - 1))
			if len(sched.Read) == 0 && len(sched.Write) == 0 {
				return c
			}
			return fault.WrapConn(c, sched, func(fault.Event) { faults.Inc() })
		}
		fmt.Fprintf(os.Stderr, "cic-gatewayd: FAULT INJECTION ACTIVE (%s) — dev use only\n", spec)
	}
	srv := server.New(server.Config{
		MaxSessions:   *maxSessions,
		MemoryBudget:  *memBudget,
		IdleTimeout:   *idleTimeout,
		ParkTimeout:   *parkTimeout,
		DecodeTimeout: *decodeTO,
		Workers:       *workers,
		Metrics:       reg,
		Sink:          sink,
		WrapConn:      wrapConn,
		Logf:          logf,
	})

	dataLn, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var pubLn net.Listener
	pubAddr := ""
	if *pub != "" {
		if pubLn, err = net.Listen("tcp", *pub); err != nil {
			return err
		}
		pubAddr = pubLn.Addr().String()
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, cic.DebugHandler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "cic-gatewayd: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cic-gatewayd: debug endpoint on http://%s/metrics\n", *debugAddr)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(dataLn.Addr().String()+"\n"+pubAddr+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cic-gatewayd: ingesting on %s", dataLn.Addr())
	if pubAddr != "" {
		fmt.Fprintf(os.Stderr, ", publishing on %s", pubAddr)
	}
	fmt.Fprintln(os.Stderr)

	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(dataLn) }()
	if pubLn != nil {
		go func() { errc <- srv.ServePub(pubLn) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cic-gatewayd: %v — draining\n", sig)
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "cic-gatewayd: drained")
	return nil
}
