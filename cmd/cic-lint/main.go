// cic-lint is the project's multichecker: it runs every analyzer in
// internal/lint over the given package patterns (default ./...) and
// prints one line per finding, exiting non-zero when any invariant is
// violated. `make lint` runs it as part of the ci gate; docs/LINTING.md
// catalogues the analyzers and the invariants they enforce.
//
// Usage:
//
//	cic-lint [flags] [packages]
//
//	-list              print the analyzer catalogue (with -json: as JSON)
//	-json              emit findings as a JSON array
//	-sarif             emit findings as SARIF 2.1.0 on stdout
//	-sarif-file path   also write the SARIF log to path
//	-baseline path     suppression file (default lint.baseline)
//	-update-baseline   rewrite the baseline from the current findings
//	-workers n         type-checking workers (0 = GOMAXPROCS)
//	-v                 per-analyzer timing on stderr
//
// Findings matched by the baseline are suppressed; baseline entries no
// finding matches are reported as stale so dead suppressions cannot
// accumulate. Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cic/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list           = flag.Bool("list", false, "list the analyzers and their invariants, then exit")
		jsonOut        = flag.Bool("json", false, "emit findings (or, with -list, the catalogue) as JSON")
		sarifOut       = flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
		sarifFile      = flag.String("sarif-file", "", "also write the SARIF 2.1.0 log to this path")
		baselinePath   = flag.String("baseline", "lint.baseline", "suppression file for grandfathered findings")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite -baseline from the current findings and exit")
		workers        = flag.Int("workers", 0, "concurrent type-checking workers (0 = GOMAXPROCS)")
		verbose        = flag.Bool("v", false, "print per-analyzer timing on stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cic-lint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs cic's invariant analyzers over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Exits 1 when any diagnostic is reported.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(lint.Catalogue()); err != nil {
				fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
				return 2
			}
			return 0
		}
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadWith(lint.LoadOptions{Workers: *workers}, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
		return 2
	}
	diags, timings, err := lint.RunTimed(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
		return 2
	}
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "cic-lint: %-14s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
	}

	cwd, _ := os.Getwd()
	rel := func(filename string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, filename); err == nil && !filepath.IsAbs(r) && r != ".." && !hasDotDotPrefix(r) {
				return filepath.ToSlash(r)
			}
		}
		return filepath.ToSlash(filename)
	}

	if *updateBaseline {
		if err := os.WriteFile(*baselinePath, lint.FormatBaseline(diags, rel), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "cic-lint: wrote %d entr(ies) to %s — justify each before committing\n", len(diags), *baselinePath)
		return 0
	}

	base, err := lint.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
		return 2
	}
	kept, suppressed := base.Apply(diags, rel)
	for _, stale := range base.Stale() {
		fmt.Fprintf(os.Stderr, "cic-lint: stale baseline entry (finding is gone — delete it): %s\n", stale)
	}

	var sarifBytes []byte
	if *sarifOut || *sarifFile != "" {
		sarifBytes, err = lint.SARIF(lint.All(), kept, rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
			return 2
		}
	}
	if *sarifFile != "" {
		if err := os.WriteFile(*sarifFile, append(sarifBytes, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
			return 2
		}
	}

	switch {
	case *sarifOut:
		os.Stdout.Write(append(sarifBytes, '\n'))
	case *jsonOut:
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(kept))
		for _, d := range kept {
			out = append(out, finding{Analyzer: d.Analyzer, File: rel(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
			return 2
		}
	default:
		for _, d := range kept {
			pos := d.Pos
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
		}
	}

	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "cic-lint: %d finding(s) suppressed by %s\n", suppressed, *baselinePath)
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "cic-lint: %d invariant violation(s) in %d package(s)\n", len(kept), len(pkgs))
		return 1
	}
	return 0
}

func hasDotDotPrefix(p string) bool {
	return p == ".." || len(p) > 2 && p[:3] == ".."+string(filepath.Separator)
}
