// cic-lint is the project's multichecker: it runs every analyzer in
// internal/lint over the given package patterns (default ./...) and
// prints one line per finding, exiting non-zero when any invariant is
// violated. `make lint` runs it as part of the ci gate; docs/LINTING.md
// catalogues the analyzers and the invariants they enforce.
//
// Usage:
//
//	cic-lint [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cic/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cic-lint [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs cic's invariant analyzers over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Exits 1 when any diagnostic is reported.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cic-lint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cic-lint: %d invariant violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
