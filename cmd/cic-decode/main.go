// Command cic-decode decodes LoRa packets — including multi-packet
// collisions — from a .cf32 IQ capture (as produced by cic-gen, GNU Radio,
// or any SDR front end at OSR× the LoRa bandwidth).
//
// Usage:
//
//	cic-decode -in capture.cf32 [-algo cic|strawman|lora|choir|ftrack] [flags]
//	cic-decode -in - -stream            # constant-memory decode from stdin
//
// Decoded packets are printed one per line: start sample, SNR, CFO, CRC
// status and payload hex. With -stream the capture is decoded through the
// streaming cic.Gateway in fixed-size chunks, so memory stays constant no
// matter how long the capture is (and -in - accepts a pipe); without it
// the whole file is loaded and decoded by the batch Receiver.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"cic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-decode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", `input .cf32 path, or "-" for stdin (required)`)
		algo      = flag.String("algo", "cic", "decoder: cic, strawman, lora, choir, ftrack")
		stream    = flag.Bool("stream", false, "decode via the streaming Gateway in fixed-size chunks (constant memory; cic/strawman only)")
		chunk     = flag.Int("chunk", 65536, "samples per read in -stream mode")
		sf        = flag.Int("sf", 8, "spreading factor")
		bw        = flag.Float64("bw", 250e3, "bandwidth Hz")
		osr       = flag.Int("osr", 4, "oversampling ratio of the capture")
		cr        = flag.Int("cr", 1, "coding rate 1..4 (4/5..4/8)")
		workers   = flag.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
		stats     = flag.Bool("stats", false, "print the decode-pipeline metrics snapshot as JSON on stderr")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while decoding")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}

	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = *sf
	cfg.Bandwidth = *bw
	cfg.Oversampling = *osr
	cfg.CodingRate = *cr
	if err := cfg.Validate(); err != nil {
		return err
	}

	options := []cic.Option{
		cic.WithAlgorithm(cic.Algorithm(*algo)),
		cic.WithWorkers(*workers),
	}
	// Instrumentation is opt-in: with neither -stats nor -debug-addr the
	// decode path runs with metrics disabled (the nil-registry fast path).
	var reg *cic.Metrics
	if *stats || *debugAddr != "" {
		reg = cic.NewMetrics()
		options = append(options, cic.WithMetrics(reg))
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, cic.DebugHandler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "cic-decode: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics\n", *debugAddr)
	}

	var src io.Reader
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	if *stream {
		err := streamDecode(cfg, src, *algo, *chunk, options)
		if err == nil && *stats {
			err = dumpStats(reg.Snapshot())
		}
		return err
	}

	iq, err := cic.ReadCF32(src)
	if err != nil {
		return err
	}
	recv, err := cic.NewReceiver(cfg, options...)
	if err != nil {
		return err
	}
	pkts, err := recv.DecodeBuffer(iq)
	if err != nil {
		return err
	}
	fmt.Printf("%d packet(s) found by %s in %d samples\n", len(pkts), *algo, len(iq))
	for i, p := range pkts {
		printPacket(i, p)
	}
	if *stats {
		return dumpStats(recv.Stats())
	}
	return nil
}

// streamDecode pushes the capture through a cic.Gateway in fixed-size
// chunks, printing packets as they are delivered. Memory stays constant
// regardless of capture length: one chunk buffer plus the gateway's
// bounded ring.
func streamDecode(cfg cic.Config, src io.Reader, algo string, chunk int, options []cic.Option) error {
	if chunk <= 0 {
		return fmt.Errorf("-chunk must be positive")
	}
	gw, err := cic.NewGateway(cfg, options...)
	if err != nil {
		return err
	}
	// Close on every exit path: an early return on a read or write error
	// must still close the Packets channel, or the printer goroutine
	// below would block on its range forever. Close is idempotent, so
	// the explicit flush before the final count is unaffected.
	defer gw.Close()
	done := make(chan int)
	go func() {
		n := 0
		for p := range gw.Packets() {
			printPacket(n, p)
			n++
		}
		done <- n
	}()
	cr := cic.NewCF32Reader(src)
	buf := make([]complex128, chunk)
	var total int64
	for {
		n, rerr := cr.Read(buf)
		if n > 0 {
			if _, werr := gw.Write(buf[:n]); werr != nil {
				return werr
			}
			total += int64(n)
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	if err := gw.Close(); err != nil {
		return err
	}
	fmt.Printf("%d packet(s) found by %s in %d streamed samples\n", <-done, algo, total)
	return nil
}

func printPacket(i int, p cic.Packet) {
	status := "CRC OK "
	if !p.OK {
		status = "CRC BAD"
	}
	fmt.Printf("#%d start=%d snr=%.1fdB cfo=%+.0fHz %s payload=%x\n",
		i, p.Start, p.SNR, p.CFO, status, p.Payload)
}

func dumpStats(s cic.Stats) error {
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
