// Command cic-decode decodes LoRa packets — including multi-packet
// collisions — from a .cf32 IQ capture (as produced by cic-gen, GNU Radio,
// or any SDR front end at OSR× the LoRa bandwidth).
//
// Usage:
//
//	cic-decode -in capture.cf32 [-algo cic|strawman|lora|choir|ftrack] [flags]
//
// Decoded packets are printed one per line: start sample, SNR, CFO, CRC
// status and payload hex.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"cic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-decode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input .cf32 path (required)")
		algo      = flag.String("algo", "cic", "decoder: cic, strawman, lora, choir, ftrack")
		sf        = flag.Int("sf", 8, "spreading factor")
		bw        = flag.Float64("bw", 250e3, "bandwidth Hz")
		osr       = flag.Int("osr", 4, "oversampling ratio of the capture")
		cr        = flag.Int("cr", 1, "coding rate 1..4 (4/5..4/8)")
		workers   = flag.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
		stats     = flag.Bool("stats", false, "print the decode-pipeline metrics snapshot as JSON on stderr")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while decoding")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}

	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = *sf
	cfg.Bandwidth = *bw
	cfg.Oversampling = *osr
	cfg.CodingRate = *cr
	if err := cfg.Validate(); err != nil {
		return err
	}

	iq, err := cic.ReadCF32File(*in)
	if err != nil {
		return err
	}
	options := []cic.Option{
		cic.WithAlgorithm(cic.Algorithm(*algo)),
		cic.WithWorkers(*workers),
	}
	// Instrumentation is opt-in: with neither -stats nor -debug-addr the
	// decode path runs with metrics disabled (the nil-registry fast path).
	var reg *cic.Metrics
	if *stats || *debugAddr != "" {
		reg = cic.NewMetrics()
		options = append(options, cic.WithMetrics(reg))
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, cic.DebugHandler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "cic-decode: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics\n", *debugAddr)
	}
	recv, err := cic.NewReceiver(cfg, options...)
	if err != nil {
		return err
	}
	pkts, err := recv.DecodeBuffer(iq)
	if err != nil {
		return err
	}
	fmt.Printf("%d packet(s) found by %s in %d samples\n", len(pkts), *algo, len(iq))
	for i, p := range pkts {
		status := "CRC OK "
		if !p.OK {
			status = "CRC BAD"
		}
		fmt.Printf("#%d start=%d snr=%.1fdB cfo=%+.0fHz %s payload=%x\n",
			i, p.Start, p.SNR, p.CFO, status, p.Payload)
	}
	if *stats {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recv.Stats()); err != nil {
			return err
		}
	}
	return nil
}
