// Command cic-feed streams a cf32 IQ capture (a file, cic-gen output,
// or stdin) into a running cic-gatewayd as one ingestion session. It
// exits only after the daemon acknowledges the session drain, so a zero
// exit status means every fully-buffered packet was published.
//
// Usage:
//
//	cic-feed -addr 127.0.0.1:7733 -in capture.cf32 [-station id] [flags]
//	cic-gen -out /dev/stdout ... | cic-feed -addr ... -in -
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cic"
	"cic/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-feed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "", "cic-gatewayd ingestion address (required)")
		in      = flag.String("in", "", `input .cf32 path, or "-" for stdin (required)`)
		station = flag.String("station", "cic-feed", "station identifier reported in published records")
		sf      = flag.Int("sf", 8, "spreading factor")
		bw      = flag.Float64("bw", 250e3, "bandwidth Hz")
		osr     = flag.Int("osr", 4, "oversampling ratio of the capture")
		cr      = flag.Int("cr", 1, "coding rate 1..4 (4/5..4/8)")
		chunk   = flag.Int("chunk", 32768, "samples per IQ frame")
	)
	flag.Parse()
	if *addr == "" || *in == "" {
		flag.Usage()
		return fmt.Errorf("-addr and -in are required")
	}

	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = *sf
	cfg.Bandwidth = *bw
	cfg.Oversampling = *osr
	cfg.CodingRate = *cr
	if err := cfg.Validate(); err != nil {
		return err
	}

	var src *os.File
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	if err := c.Hello(*station, cfg); err != nil {
		c.Abort()
		return err
	}
	t0 := time.Now()
	n, err := c.StreamCF32(src, *chunk)
	if err != nil {
		c.Abort()
		return err
	}
	// Close waits for the daemon's drain acknowledgement.
	if err := c.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cic-feed: streamed %d samples (%.2fs of air at %.0f Hz) in %v, session drained\n",
		n, float64(n)/cfg.SampleRate(), cfg.SampleRate(), time.Since(t0).Round(time.Millisecond))
	return nil
}
