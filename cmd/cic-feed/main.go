// Command cic-feed streams a cf32 IQ capture (a file, cic-gen output,
// or stdin) into a running cic-gatewayd as one ingestion session. It
// exits only after the daemon acknowledges the session drain, so a zero
// exit status means every fully-buffered packet was published.
//
// The session is resumable: cic-feed opens it with the RESUME
// handshake, and on any connection loss it redials with exponential
// backoff and replays only the samples the daemon has not yet
// acknowledged — the published NDJSON stream has no gaps and no
// duplicates. A restarted cic-feed resuming the same station within the
// daemon's park window skips the already-ingested prefix of its input.
//
// Usage:
//
//	cic-feed -addr 127.0.0.1:7733 -in capture.cf32 [-station id] [flags]
//	cic-gen -out /dev/stdout ... | cic-feed -addr ... -in -
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cic"
	"cic/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-feed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "", "cic-gatewayd ingestion address (required)")
		in          = flag.String("in", "", `input .cf32 path, or "-" for stdin (required)`)
		station     = flag.String("station", "cic-feed", "station identifier reported in published records")
		sf          = flag.Int("sf", 8, "spreading factor")
		bw          = flag.Float64("bw", 250e3, "bandwidth Hz")
		osr         = flag.Int("osr", 4, "oversampling ratio of the capture")
		cr          = flag.Int("cr", 1, "coding rate 1..4 (4/5..4/8)")
		chunk       = flag.Int("chunk", 32768, "samples per IQ frame")
		retries     = flag.Int("retries", server.DefaultMaxAttempts, "consecutive reconnect attempts before giving up (-1 = forever)")
		dialTimeout = flag.Duration("dial-timeout", server.DefaultDialTimeout, "TCP connect timeout")
		rate        = flag.Float64("rate", 0, "throttle to this many samples/sec (0 = as fast as possible)")
		quiet       = flag.Bool("quiet", false, "suppress reconnect logging")
		logFormat   = flag.String("log-format", "text", `log encoding: "text" or "json" (structured NDJSON)`)
	)
	flag.Parse()
	if *addr == "" || *in == "" {
		flag.Usage()
		return fmt.Errorf("-addr and -in are required")
	}

	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = *sf
	cfg.Bandwidth = *bw
	cfg.Oversampling = *osr
	cfg.CodingRate = *cr
	if err := cfg.Validate(); err != nil {
		return err
	}

	var src io.Reader
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	var logger *slog.Logger
	var logf func(format string, args ...any)
	if !*quiet {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			return fmt.Errorf("-log-format: unknown format %q (want text or json)", *logFormat)
		}
		logger = logger.With("station", *station)
		logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	// SIGINT/SIGTERM cancel the reconnect machinery immediately — a feed
	// stuck in a backoff sleep exits on signal, not after the interval.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := server.NewReconnectingClient(server.ReconnectOptions{
		Station:     *station,
		Config:      cfg,
		Addr:        *addr,
		Context:     ctx,
		DialTimeout: *dialTimeout,
		MaxAttempts: *retries,
		Logf:        logf,
	})
	off, err := c.Connect()
	if err != nil {
		return err
	}
	if off > 0 {
		// The daemon already holds the first off samples of this station's
		// stream (a previous cic-feed run within the park window); skip
		// the corresponding cf32 prefix — 8 bytes per sample.
		if _, err := io.CopyN(io.Discard, src, off*8); err != nil {
			return fmt.Errorf("skipping %d already-ingested samples: %w", off, err)
		}
		if logger != nil {
			// The message text is load-bearing: scripts/smoke.sh greps it
			// to prove the restarted feed resumed instead of replaying.
			logger.Info(fmt.Sprintf("resuming at sample offset %d", off), "offset", off)
		}
	}

	t0 := time.Now()
	n, err := stream(c, src, *chunk, *rate)
	if err != nil {
		return err
	}
	// Close waits for the daemon's drain acknowledgement.
	if err := c.Close(); err != nil {
		return err
	}
	if logger != nil {
		logger.Info("session drained",
			"samples", n,
			"air_seconds", float64(n)/cfg.SampleRate(),
			"sample_rate_hz", cfg.SampleRate(),
			"elapsed", time.Since(t0).Round(time.Millisecond).String(),
			"reconnects", c.Reconnects())
	} else {
		fmt.Fprintf(os.Stderr, "cic-feed: streamed %d samples, session drained (%d reconnects)\n",
			n, c.Reconnects())
	}
	return nil
}

// stream feeds the cf32 source through the reconnecting client in
// chunkSamples-sized IQ frames, optionally throttled to rate
// samples/sec, returning the sample count sent.
func stream(c *server.ReconnectingClient, src io.Reader, chunkSamples int, rate float64) (int64, error) {
	if chunkSamples <= 0 {
		chunkSamples = server.MaxIQSamples / 4
	}
	cr := cic.NewCF32Reader(src)
	buf := make([]complex128, chunkSamples)
	var total int64
	start := time.Now()
	for {
		n, err := cr.Read(buf)
		if n > 0 {
			if werr := c.WriteIQ(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
			if rate > 0 {
				target := time.Duration(float64(total) / rate * float64(time.Second))
				if d := target - time.Since(start); d > 0 {
					time.Sleep(d)
				}
			}
		}
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}
