package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const goodExposition = `# HELP frames_total Frames.
# TYPE frames_total counter
frames_total 12
# TYPE sessions gauge
sessions{station="a b",sf="7"} 2
sessions{station="we\"ird\\st"} 1
# TYPE lat histogram
lat_bucket{station="a",le="0.1"} 1
lat_bucket{station="a",le="1"} 3
lat_bucket{station="a",le="+Inf"} 4
lat_sum{station="a"} 5.5
lat_count{station="a"} 4
`

func TestValidateExpositionGood(t *testing.T) {
	families, err := validateExposition(goodExposition)
	if err != nil {
		t.Fatal(err)
	}
	if families["frames_total"] != 1 || families["sessions"] != 2 || families["lat"] != 5 {
		t.Fatalf("family counts = %v", families)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"untyped sample":         "frames_total 1\n",
		"bad value":              "# TYPE x counter\nx one\n",
		"bad metric name":        "# TYPE x counter\nx-y 1\n",
		"unterminated labels":    "# TYPE x counter\nx{a=\"b 1\n",
		"unquoted label value":   "# TYPE x counter\nx{a=b} 1\n",
		"bad escape":             "# TYPE x counter\nx{a=\"\\t\"} 1\n",
		"unknown type":           "# TYPE x widget\nx 1\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"missing +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n",
		"count mismatch":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
	}
	for name, body := range cases {
		if _, err := validateExposition(body); err == nil {
			t.Errorf("%s: validated bad exposition:\n%s", name, body)
		}
	}
}

func TestParseSampleTimestamp(t *testing.T) {
	name, labels, v, err := parseSample(`x{a="b"} 4.5 1712000000`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" || labels["a"] != "b" || v != 4.5 {
		t.Fatalf("parseSample = %q %v %v", name, labels, v)
	}
	if _, _, _, err := parseSample(`x 1 not-a-ts`); err == nil {
		t.Fatal("accepted garbage timestamp")
	}
}

func TestAwaitCheckConverges(t *testing.T) {
	var calls atomic.Int64
	check := func() error {
		if calls.Add(1) < 3 {
			return errors.New("not yet")
		}
		return nil
	}
	if err := awaitCheck(check, 5*time.Second, time.Millisecond); err != nil {
		t.Fatalf("awaitCheck = %v, want nil once the check converges", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("check ran %d times, want 3", n)
	}
}

func TestAwaitCheckReportsLastFailure(t *testing.T) {
	sentinel := errors.New("still down")
	start := time.Now()
	err := awaitCheck(func() error { return sentinel }, 30*time.Millisecond, time.Millisecond)
	if !errors.Is(err, sentinel) {
		t.Fatalf("awaitCheck = %v, want it to wrap the last failure", err)
	}
	if !strings.Contains(err.Error(), "condition not met within") {
		t.Fatalf("awaitCheck error %q does not name the window", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("awaitCheck overshot its window")
	}
}

// TestAwaitCheckMetricsEndpoint is the scenario smoke.sh relies on: a
// metrics endpoint whose gauge flips after a delay (a probed-down
// backend), with -await polling the scrape until the -contains
// assertion holds.
func TestAwaitCheckMetricsEndpoint(t *testing.T) {
	var scrapes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthy := 1
		if scrapes.Add(1) >= 3 {
			healthy = 0
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# TYPE cluster_backend_healthy gauge\ncluster_backend_healthy{backend=\"shard-0\"} %d\n", healthy)
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	want := []string{`cluster_backend_healthy{backend="shard-0"} 0`}
	check := func() error {
		return checkMetrics(client, srv.URL, []string{"cluster_backend_healthy"}, want)
	}
	if err := check(); err == nil {
		t.Fatal("single-shot check passed before the gauge flipped")
	}
	if err := awaitCheck(check, 5*time.Second, time.Millisecond); err != nil {
		t.Fatalf("awaitCheck against flipping endpoint: %v", err)
	}
	if n := scrapes.Load(); n < 3 {
		t.Fatalf("endpoint scraped %d times, want at least 3", n)
	}
}

func TestLabelsKeySkipsLe(t *testing.T) {
	a := labelsKey(map[string]string{"station": "s", "le": "1"}, "le")
	b := labelsKey(map[string]string{"le": "+Inf", "station": "s"}, "le")
	if a != b {
		t.Fatalf("labelsKey not stable across le: %q vs %q", a, b)
	}
	if strings.Contains(a, "+Inf") {
		t.Fatal("labelsKey leaked the skipped label")
	}
}
