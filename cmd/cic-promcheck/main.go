// Command cic-promcheck validates a live Prometheus metrics endpoint
// and probes health endpoints, using only the standard library — it is
// the scrape-side counterpart to the exposition writer in internal/obs
// and exists so scripts/smoke.sh can assert the daemon's telemetry
// without pulling in promtool or any external dependency.
//
// Two modes:
//
//	cic-promcheck -metrics URL [-require fam,fam] [-contains substr]...
//	              [-await d] [-await-interval d]
//	cic-promcheck -probe URL [-status 200] [-body-contains substr]
//
// -metrics fetches the URL with a Prometheus scraper Accept header and
// runs a strict text-format (0.0.4) validation pass: every sample line
// must parse as `name{labels} value [timestamp]`, every sample must
// belong to a family announced by a preceding # TYPE line, label sets
// must be well formed, histogram buckets must be cumulative and end in
// a +Inf bucket equal to _count. -require lists family names that must
// carry at least one sample; -contains (repeatable) asserts a literal
// substring, e.g. a specific labeled series.
//
// -await turns the -metrics mode into a bounded poll: the scrape is
// retried every -await-interval until all checks pass or the -await
// window elapses (the last failure is reported). This is how the smoke
// suite asserts *convergence* — e.g. that a router's
// cluster_backend_healthy gauge reflects a killed backend within one
// probe interval — without racing the state change.
//
// -probe performs a GET and asserts the response status (default 200)
// and, optionally, a body substring. Exit status is 0 only when every
// check passes.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// repeatFlag collects a repeatable -flag value.
type repeatFlag []string

func (f *repeatFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-promcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var contains, require repeatFlag
	var (
		metricsURL = flag.String("metrics", "", "metrics URL to fetch and validate as Prometheus text exposition")
		probeURL   = flag.String("probe", "", "URL to probe with a plain GET")
		status     = flag.Int("status", http.StatusOK, "expected HTTP status for -probe")
		bodyWant   = flag.String("body-contains", "", "substring the -probe response body must contain")
		timeout    = flag.Duration("timeout", 10*time.Second, "HTTP request timeout")
		await      = flag.Duration("await", 0, "retry a failing -metrics check until it passes, for up to this long (0 = single shot)")
		awaitEvery = flag.Duration("await-interval", 200*time.Millisecond, "poll interval for -await")
	)
	flag.Var(&require, "require", "metric family that must be present (repeatable, or comma-separated)")
	flag.Var(&contains, "contains", "literal substring the exposition must contain (repeatable)")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	switch {
	case *metricsURL != "":
		check := func() error {
			return checkMetrics(client, *metricsURL, splitAll(require), contains)
		}
		if *await > 0 {
			return awaitCheck(check, *await, *awaitEvery)
		}
		return check()
	case *probeURL != "":
		return probe(client, *probeURL, *status, *bodyWant)
	default:
		flag.Usage()
		return fmt.Errorf("one of -metrics or -probe is required")
	}
}

// awaitCheck polls check until it passes or the window elapses,
// returning the last failure so the caller sees what never converged.
func awaitCheck(check func() error, window, interval time.Duration) error {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	deadline := time.Now().Add(window)
	for {
		err := check()
		if err == nil {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("condition not met within %v: %w", window, err)
		}
		time.Sleep(interval)
	}
}

func splitAll(vs []string) []string {
	var out []string
	for _, v := range vs {
		for _, p := range strings.Split(v, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
	}
	return out
}

func probe(client *http.Client, url string, wantStatus int, wantBody string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("probe %s: status %d, want %d (body: %s)",
			url, resp.StatusCode, wantStatus, strings.TrimSpace(string(body)))
	}
	if wantBody != "" && !strings.Contains(string(body), wantBody) {
		return fmt.Errorf("probe %s: body %q does not contain %q", url, string(body), wantBody)
	}
	fmt.Printf("cic-promcheck: probe %s: %d OK\n", url, resp.StatusCode)
	return nil
}

func checkMetrics(client *http.Client, url string, require, contains []string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	// Scrape like Prometheus does, so content negotiation picks the text
	// exposition even though the endpoint defaults to JSON.
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("%s: Content-Type %q, want text/plain exposition", url, ct)
	}

	families, err := validateExposition(string(body))
	if err != nil {
		return fmt.Errorf("%s: %w\n--- exposition ---\n%s", url, err, body)
	}
	for _, fam := range require {
		if families[fam] == 0 {
			return fmt.Errorf("%s: required family %q has no samples\n--- exposition ---\n%s", url, fam, body)
		}
	}
	for _, sub := range contains {
		if !strings.Contains(string(body), sub) {
			return fmt.Errorf("%s: exposition does not contain %q\n--- exposition ---\n%s", url, sub, body)
		}
	}
	names := make([]string, 0, len(families))
	total := 0
	for name, n := range families {
		names = append(names, name)
		total += n
	}
	sort.Strings(names)
	fmt.Printf("cic-promcheck: %s: %d families, %d samples OK\n", url, len(names), total)
	return nil
}

// validateExposition runs the strict Prometheus text-format (0.0.4)
// pass described in the package comment and returns per-family sample
// counts (histogram _bucket/_sum/_count fold onto their base family).
func validateExposition(body string) (map[string]int, error) {
	families := map[string]int{}
	typed := map[string]string{}
	// histogram series state, keyed by family + label set minus le:
	// cumulative bucket values in order of appearance, plus the _count.
	type histSeries struct {
		buckets []float64
		les     []string
		count   float64
		hasCnt  bool
	}
	hists := map[string]*histSeries{}

	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed # TYPE: %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name {
				if typed[trimmed] == "histogram" || typed[trimmed] == "summary" {
					base = trimmed
				}
			}
		}
		if _, ok := typed[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		families[base]++

		if typed[base] == "histogram" && base != name {
			key := base + "\x00" + labelsKey(labels, "le")
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				hs.buckets = append(hs.buckets, value)
				hs.les = append(hs.les, le)
			case strings.HasSuffix(name, "_count"):
				hs.count = value
				hs.hasCnt = true
			}
		}
	}

	for key, hs := range hists {
		fam := key[:strings.IndexByte(key, '\x00')]
		if len(hs.les) == 0 || hs.les[len(hs.les)-1] != "+Inf" {
			return nil, fmt.Errorf("histogram %s: bucket run does not end in le=\"+Inf\" (got %v)", fam, hs.les)
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i] < hs.buckets[i-1] {
				return nil, fmt.Errorf("histogram %s: buckets not cumulative at le=%q (%v < %v)",
					fam, hs.les[i], hs.buckets[i], hs.buckets[i-1])
			}
		}
		if hs.hasCnt && hs.buckets[len(hs.buckets)-1] != hs.count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v",
				fam, hs.buckets[len(hs.buckets)-1], hs.count)
		}
	}
	return families, nil
}

// parseSample splits one sample line into name, label map, and value.
// An optional trailing timestamp (an integer) is accepted and ignored.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("no value separator: %q", line)
	}
	name := rest[:i]
	labels := map[string]string{}
	if rest[i] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[i+1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q: %w", fields[1], err)
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",...}` and returns the map plus the
// remainder of the line after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without `=`")
		}
		key := s[:eq]
		if !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[0] {
				case '\\', '"':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[0], key)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels[key] = val.String()
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// labelsKey serialises a label map deterministically, skipping one key.
func labelsKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x01')
		b.WriteString(labels[k])
		b.WriteByte('\x02')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
