package main

import (
	"bytes"
	"os"
	"testing"

	"cic/internal/eval"
	"cic/internal/sim"
)

func TestSelectDeployments(t *testing.T) {
	all, err := selectDeployments("")
	if err != nil || len(all) != 4 {
		t.Fatalf("default deployments: %v, %d", err, len(all))
	}
	one, err := selectDeployments("d3")
	if err != nil || len(one) != 1 || one[0].Name != "D3" {
		t.Fatalf("d3: %v, %+v", err, one)
	}
	if _, err := selectDeployments("D7"); err == nil {
		t.Error("bogus deployment accepted")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	cfg := eval.DefaultConfig()
	if _, err := runExperiment("nonsense", cfg, sim.Deployments()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentLightweightFigures(t *testing.T) {
	cfg := eval.DefaultConfig()
	cfg.Duration = 0.5
	cfg.Rates = []float64{10}
	cfg.PayloadLen = 8
	for _, exp := range []string{"heisenberg", "snr", "maps", "cancellation"} {
		figs, err := runExperiment(exp, cfg, sim.Deployments())
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if len(figs) == 0 {
			t.Fatalf("%s produced no figures", exp)
		}
	}
}

func TestEmitTableAndCSV(t *testing.T) {
	fig := eval.Figure{
		ID: "figT", Title: "emit test", XLabel: "x", YLabel: "y",
		Series: []eval.Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
	}
	dir := t.TempDir()
	if err := emit([]eval.Figure{fig}, dir, "table", true); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(dir + "/figT.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("figT")) {
		t.Error("CSV content missing header")
	}
	svgData, err := readFile(dir + "/figT.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(svgData, []byte("<svg")) || !bytes.Contains(svgData, []byte("circle")) {
		t.Error("SVG content malformed")
	}
	// stdout paths (no outdir) must not error either.
	if err := emit([]eval.Figure{fig}, "", "csv", false); err != nil {
		t.Fatal(err)
	}
	if err := emit([]eval.Figure{fig}, "", "table", false); err != nil {
		t.Fatal(err)
	}
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }
