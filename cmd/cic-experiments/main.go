// Command cic-experiments regenerates the evaluation figures of
// "Concurrent Interference Cancellation: Decoding Multi-Packet Collisions
// in LoRa" (SIGCOMM 2021).
//
// Usage:
//
//	cic-experiments [flags] <experiment>
//
// Experiments:
//
//	throughput   Figs 28–31: network capacity vs offered load (per deployment)
//	detection    Figs 32–35: packet detection rate vs offered load
//	ablation     Figs 36–37: CIC feature ablation (D1 and D4)
//	temporal     Fig 38: SER vs sub-symbol collision offset
//	cancellation Fig 17: cancellation depth vs Δτ and Δf
//	heisenberg   Fig 15: spectral resolution vs window span
//	clutter      Figs 19–20: up-chirp vs down-chirp detection clutter
//	snr          Fig 27: deployment SNR distributions
//	maps         Figs 22–26: deployment geometry
//	spectra      Figs 12–14: collision spectra (LoRa/strawman/CIC)
//	icss         extension: optimal-ICSS vs Strawman-CIC throughput
//	all          everything above
//
// Flags select the deployment, rates, duration, seed and output format.
// Figures are written to stdout (table) or to -outdir as CSV files.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cic/internal/eval"
	"cic/internal/obs"
	"cic/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deployment = flag.String("deployment", "", "deployment D1..D4 (default: all that apply)")
		rates      = flag.String("rates", "5,10,20,40,60,80,100", "comma-separated offered loads (pkts/s)")
		duration   = flag.Float64("duration", 2.0, "seconds of traffic per rate point (paper: 60)")
		payload    = flag.Int("payload", 28, "payload length in bytes")
		seed       = flag.Int64("seed", 1, "simulation seed")
		sf         = flag.Int("sf", 8, "spreading factor")
		bw         = flag.Float64("bw", 250e3, "bandwidth in Hz")
		osr        = flag.Int("osr", 4, "oversampling ratio (paper capture: 8)")
		workers    = flag.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
		outdir     = flag.String("outdir", "", "write figures as CSV files into this directory")
		svg        = flag.Bool("svg", false, "with -outdir: also write an .svg chart per figure")
		format     = flag.String("format", "table", "stdout format: table or csv")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one experiment required")
	}
	exp := flag.Arg(0)

	cfg := eval.DefaultConfig()
	cfg.Duration = *duration
	cfg.PayloadLen = *payload
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Frame.Chirp.SF = *sf
	cfg.Frame.Chirp.Bandwidth = *bw
	cfg.Frame.Chirp.OSR = *osr
	cfg.Frame.PHY.SF = *sf
	cfg.Rates = cfg.Rates[:0]
	for _, part := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", part, err)
		}
		cfg.Rates = append(cfg.Rates, v)
	}

	deps, err := selectDeployments(*deployment)
	if err != nil {
		return err
	}

	// Experiments always run instrumented: the CIC receiver feeds a metrics
	// registry whose decode-latency histogram is summarised after the run,
	// and -debug-addr exposes it live (plus expvar and pprof) while long
	// experiments execute.
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "cic-experiments: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics\n", *debugAddr)
	}

	figs, err := runExperiment(exp, cfg, deps)
	if err != nil {
		return err
	}
	if err := emit(figs, *outdir, *format, *svg); err != nil {
		return err
	}
	printDecodeStats(reg.Snapshot())
	return nil
}

// printDecodeStats summarises the CIC receiver's decode metrics for the
// run — most importantly the per-packet decode-latency histogram (in batch
// mode: the payload-demodulation span per packet).
func printDecodeStats(s obs.Snapshot) {
	h, ok := s.Histograms[obs.MetricDecodeLatency]
	if !ok || h.Count == 0 {
		return
	}
	fmt.Printf("\nCIC decode stats: %d packets emitted, %d preambles detected, CRC %d pass / %d fail\n",
		s.Counters[obs.MetricPacketsEmitted], s.Counters[obs.MetricPreamblesDetected],
		s.Counters[obs.MetricCRCPass], s.Counters[obs.MetricCRCFail])
	fmt.Printf("decode_latency_seconds: n=%d mean=%.6f p50=%.6f p90=%.6f p99=%.6f\n",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
}

func selectDeployments(name string) ([]sim.Deployment, error) {
	if name == "" {
		return sim.Deployments(), nil
	}
	d, err := sim.DeploymentByName(strings.ToUpper(name))
	if err != nil {
		return nil, err
	}
	return []sim.Deployment{d}, nil
}

func runExperiment(exp string, cfg eval.Config, deps []sim.Deployment) ([]eval.Figure, error) {
	var figs []eval.Figure
	add := func(f eval.Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	switch exp {
	case "throughput":
		for _, d := range deps {
			if err := add(eval.Throughput(cfg, d)); err != nil {
				return nil, err
			}
			// Append the headline-ratio view computed from the same data.
			if sum, err := eval.Summary(figs[len(figs)-1]); err == nil {
				figs = append(figs, sum)
			}
		}
	case "detection":
		for _, d := range deps {
			if err := add(eval.Detection(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "ablation":
		for _, d := range deps {
			if d.Name != "D1" && d.Name != "D4" && len(deps) == 4 {
				continue // the paper ablates only the two extremes
			}
			if err := add(eval.Ablation(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "temporal":
		return figs, add(eval.TemporalProximity(cfg))
	case "cancellation":
		return figs, add(eval.Cancellation(cfg))
	case "heisenberg":
		return figs, add(eval.Heisenberg(cfg))
	case "clutter":
		return figs, add(eval.PreambleClutter(cfg))
	case "snr":
		return figs, add(eval.SNRDistribution(cfg))
	case "maps":
		return figs, add(eval.DeploymentMaps(cfg))
	case "spectra":
		return figs, add(eval.SpectraDemo(cfg))
	case "icss":
		for _, d := range deps {
			if d.Name != "D1" && len(deps) == 4 {
				continue // one deployment suffices for the ICSS ablation
			}
			if err := add(eval.ICSSComparison(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "all":
		for _, sub := range []string{
			"heisenberg", "cancellation", "clutter", "snr", "maps",
			"spectra", "temporal", "throughput", "detection", "ablation",
		} {
			sf, err := runExperiment(sub, cfg, deps)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sub, err)
			}
			figs = append(figs, sf...)
		}
	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
	return figs, nil
}

func emit(figs []eval.Figure, outdir, format string, svg bool) error {
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		for _, f := range figs {
			path := filepath.Join(outdir, f.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.WriteCSV(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
			if svg {
				spath := filepath.Join(outdir, f.ID+".svg")
				sout, err := os.Create(spath)
				if err != nil {
					return err
				}
				if err := f.WriteSVG(sout); err != nil {
					sout.Close()
					return err
				}
				if err := sout.Close(); err != nil {
					return err
				}
				fmt.Println("wrote", spath)
			}
		}
		return nil
	}
	for _, f := range figs {
		var err error
		if format == "csv" {
			err = f.WriteCSV(os.Stdout)
		} else {
			err = f.WriteTable(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
