// Command cic-experiments regenerates the evaluation figures of
// "Concurrent Interference Cancellation: Decoding Multi-Packet Collisions
// in LoRa" (SIGCOMM 2021).
//
// The primary interface is declarative: every committed figure has a
// config under experiments/, and
//
//	cic-experiments -config experiments/<fig>.json -outdir results
//
// regenerates it. Sweep configs expand into a deterministic
// deployment × rate × seed trial matrix executed on a bounded worker
// pool; -journal checkpoints completed trials as NDJSON so an
// interrupted matrix resumes without recomputation, and -drive gatewayd
// runs the CIC receiver behind a real cic-gatewayd over TCP. See
// docs/EXPERIMENTS.md for the schema, journal format and resume
// semantics.
//
// The legacy positional interface is kept for exploration:
//
//	cic-experiments [flags] <experiment>
//
// Experiments:
//
//	throughput   Figs 28–31: network capacity vs offered load (per deployment)
//	detection    Figs 32–35: packet detection rate vs offered load
//	ablation     Figs 36–37: CIC feature ablation (D1 and D4)
//	temporal     Fig 38: SER vs sub-symbol collision offset
//	cancellation Fig 17: cancellation depth vs Δτ and Δf
//	heisenberg   Fig 15: spectral resolution vs window span
//	clutter      Figs 19–20: up-chirp vs down-chirp detection clutter
//	snr          Fig 27: deployment SNR distributions
//	maps         Figs 22–26: deployment geometry
//	spectra      Figs 12–14: collision spectra (LoRa/strawman/CIC)
//	icss         extension: optimal-ICSS vs Strawman-CIC throughput
//	all          everything above
//
// Figures are written to stdout (table) or to -outdir as CSV files.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"cic/internal/eval"
	"cic/internal/experiment"
	"cic/internal/obs"
	"cic/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cic-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "declarative experiment config (JSON, see experiments/); replaces the positional experiment")
		journal    = flag.String("journal", "", "NDJSON trial journal for sweep configs: completed trials checkpoint here and a rerun resumes")
		drive      = flag.String("drive", "", "sweep drive mode: inprocess (default) or gatewayd")
		gwBin      = flag.String("gatewayd-bin", "", "with -drive gatewayd: spawn this cic-gatewayd binary on loopback")
		gwAddr     = flag.String("gatewayd-addr", "", "with -drive gatewayd: attach to a running daemon at this ingestion address")
		gwOut      = flag.String("gatewayd-out", "", "with -gatewayd-addr: the attached daemon's -out NDJSON file")
		stopAfter  = flag.Int("stop-after", 0, "stop a sweep cleanly after N newly executed trials (resume later from -journal)")
		trialConc  = flag.Int("trial-concurrency", 0, "sweep trial worker pool size (0 = GOMAXPROCS)")
		quiet      = flag.Bool("quiet", false, "suppress per-trial progress logging")
		deployment = flag.String("deployment", "", "deployment D1..D4 (default: all that apply)")
		rates      = flag.String("rates", "5,10,20,40,60,80,100", "comma-separated offered loads (pkts/s)")
		duration   = flag.Float64("duration", 2.0, "seconds of traffic per rate point (paper: 60)")
		payload    = flag.Int("payload", 28, "payload length in bytes")
		seed       = flag.Int64("seed", 1, "simulation seed")
		sf         = flag.Int("sf", 8, "spreading factor")
		bw         = flag.Float64("bw", 250e3, "bandwidth in Hz")
		osr        = flag.Int("osr", 4, "oversampling ratio (paper capture: 8)")
		workers    = flag.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
		outdir     = flag.String("outdir", "", "write figures as CSV files into this directory")
		svg        = flag.Bool("svg", false, "with -outdir: also write an .svg chart per figure")
		format     = flag.String("format", "table", "stdout format: table or csv")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	)
	flag.Parse()

	// Experiments always run instrumented: the receivers and the runner
	// feed a metrics registry whose decode-latency histogram is summarised
	// after the run, and -debug-addr exposes it live (plus expvar and
	// pprof) while long experiments execute.
	reg := obs.NewRegistry()
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "cic-experiments: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics\n", *debugAddr)
	}

	if *configPath != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("-config and a positional experiment are mutually exclusive")
		}
		figs, err := runConfig(configOptions{
			path:      *configPath,
			journal:   *journal,
			drive:     *drive,
			gwBin:     *gwBin,
			gwAddr:    *gwAddr,
			gwOut:     *gwOut,
			stopAfter: *stopAfter,
			trialConc: *trialConc,
			quiet:     *quiet,
			metrics:   reg,
		})
		if err != nil {
			return err
		}
		if err := emit(figs, *outdir, *format, *svg); err != nil {
			return err
		}
		printDecodeStats(reg.Snapshot())
		return nil
	}

	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one experiment (or -config) required")
	}
	exp := flag.Arg(0)

	cfg := eval.DefaultConfig()
	cfg.Duration = *duration
	cfg.PayloadLen = *payload
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Metrics = reg
	cfg.Frame.Chirp.SF = *sf
	cfg.Frame.Chirp.Bandwidth = *bw
	cfg.Frame.Chirp.OSR = *osr
	cfg.Frame.PHY.SF = *sf
	cfg.Rates = cfg.Rates[:0]
	for _, part := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", part, err)
		}
		cfg.Rates = append(cfg.Rates, v)
	}

	deps, err := selectDeployments(*deployment)
	if err != nil {
		return err
	}

	figs, err := runExperiment(exp, cfg, deps)
	if err != nil {
		return err
	}
	if err := emit(figs, *outdir, *format, *svg); err != nil {
		return err
	}
	printDecodeStats(reg.Snapshot())
	return nil
}

// configOptions carries the -config mode flags.
type configOptions struct {
	path      string
	journal   string
	drive     string
	gwBin     string
	gwAddr    string
	gwOut     string
	stopAfter int
	trialConc int
	quiet     bool
	metrics   *obs.Registry
}

// runConfig executes a declarative experiment config: figure configs
// dispatch straight into internal/eval, sweep configs expand into a
// journaled trial matrix and aggregate to mean ± 95% CI figures.
func runConfig(o configOptions) ([]eval.Figure, error) {
	cfg, err := experiment.Load(o.path)
	if err != nil {
		return nil, err
	}

	if cfg.Kind == experiment.KindFigure {
		for _, f := range []struct{ name, val string }{
			{"-journal", o.journal}, {"-drive", o.drive},
			{"-gatewayd-bin", o.gwBin}, {"-gatewayd-addr", o.gwAddr},
		} {
			if f.val != "" {
				return nil, fmt.Errorf("%s applies only to sweep configs (%s is kind %q)", f.name, o.path, cfg.Kind)
			}
		}
		return experiment.Figures(cfg, o.metrics)
	}

	opts := experiment.RunnerOptions{
		JournalPath: o.journal,
		Drive:       o.drive,
		Concurrency: o.trialConc,
		StopAfter:   o.stopAfter,
		Metrics:     o.metrics,
	}
	if !o.quiet {
		opts.Log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if o.drive == experiment.DriveGatewayd {
		switch {
		case o.gwBin != "" && o.gwAddr != "":
			return nil, fmt.Errorf("-gatewayd-bin and -gatewayd-addr are mutually exclusive")
		case o.gwBin != "":
			gd, err := experiment.SpawnGatewayd(o.gwBin, cfg.Fault)
			if err != nil {
				return nil, err
			}
			defer func() {
				if err := gd.Stop(); err != nil {
					fmt.Fprintln(os.Stderr, "cic-experiments: stop gatewayd:", err)
				}
			}()
			opts.Gatewayd = gd
		case o.gwAddr != "":
			if o.gwOut == "" {
				return nil, fmt.Errorf("-gatewayd-addr needs -gatewayd-out (the daemon's -out NDJSON file)")
			}
			opts.Gatewayd = &experiment.Gatewayd{Addr: o.gwAddr, OutPath: o.gwOut}
		default:
			return nil, fmt.Errorf("-drive gatewayd needs -gatewayd-bin or -gatewayd-addr")
		}
	}

	// SIGINT/SIGTERM cancel the matrix cleanly: completed trials are
	// already journaled, so the same invocation rerun resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := experiment.Run(ctx, cfg, opts)
	if err != nil {
		return nil, err
	}
	if res.Stopped {
		fmt.Fprintf(os.Stderr, "cic-experiments: stopped after %d trials; rerun with the same -config and -journal to resume\n", res.Executed)
		return nil, nil
	}
	return experiment.Aggregate(cfg, res.Results)
}

// printDecodeStats summarises the CIC receiver's decode metrics for the
// run — most importantly the per-packet decode-latency histogram (in batch
// mode: the payload-demodulation span per packet).
func printDecodeStats(s obs.Snapshot) {
	h, ok := s.Histograms[obs.MetricDecodeLatency]
	if !ok || h.Count == 0 {
		return
	}
	fmt.Printf("\nCIC decode stats: %d packets emitted, %d preambles detected, CRC %d pass / %d fail\n",
		s.Counters[obs.MetricPacketsEmitted], s.Counters[obs.MetricPreamblesDetected],
		s.Counters[obs.MetricCRCPass], s.Counters[obs.MetricCRCFail])
	fmt.Printf("decode_latency_seconds: n=%d mean=%.6f p50=%.6f p90=%.6f p99=%.6f\n",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
}

func selectDeployments(name string) ([]sim.Deployment, error) {
	if name == "" {
		return sim.Deployments(), nil
	}
	d, err := sim.DeploymentByName(strings.ToUpper(name))
	if err != nil {
		return nil, err
	}
	return []sim.Deployment{d}, nil
}

func runExperiment(exp string, cfg eval.Config, deps []sim.Deployment) ([]eval.Figure, error) {
	var figs []eval.Figure
	add := func(f eval.Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	switch exp {
	case "throughput":
		for _, d := range deps {
			if err := add(eval.Throughput(cfg, d)); err != nil {
				return nil, err
			}
			// Append the headline-ratio view computed from the same data.
			if sum, err := eval.Summary(figs[len(figs)-1]); err == nil {
				figs = append(figs, sum)
			}
		}
	case "detection":
		for _, d := range deps {
			if err := add(eval.Detection(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "ablation":
		for _, d := range deps {
			if d.Name != "D1" && d.Name != "D4" && len(deps) == 4 {
				continue // the paper ablates only the two extremes
			}
			if err := add(eval.Ablation(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "temporal":
		return figs, add(eval.TemporalProximity(cfg))
	case "cancellation":
		return figs, add(eval.Cancellation(cfg))
	case "heisenberg":
		return figs, add(eval.Heisenberg(cfg))
	case "clutter":
		return figs, add(eval.PreambleClutter(cfg))
	case "snr":
		return figs, add(eval.SNRDistribution(cfg))
	case "maps":
		return figs, add(eval.DeploymentMaps(cfg))
	case "spectra":
		return figs, add(eval.SpectraDemo(cfg))
	case "icss":
		for _, d := range deps {
			if d.Name != "D1" && len(deps) == 4 {
				continue // one deployment suffices for the ICSS ablation
			}
			if err := add(eval.ICSSComparison(cfg, d)); err != nil {
				return nil, err
			}
		}
	case "all":
		for _, sub := range []string{
			"heisenberg", "cancellation", "clutter", "snr", "maps",
			"spectra", "temporal", "throughput", "detection", "ablation",
		} {
			sf, err := runExperiment(sub, cfg, deps)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sub, err)
			}
			figs = append(figs, sf...)
		}
	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
	return figs, nil
}

func emit(figs []eval.Figure, outdir, format string, svg bool) error {
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		for _, f := range figs {
			path := filepath.Join(outdir, f.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.WriteCSV(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
			if svg {
				spath := filepath.Join(outdir, f.ID+".svg")
				sout, err := os.Create(spath)
				if err != nil {
					return err
				}
				if err := f.WriteSVG(sout); err != nil {
					sout.Close()
					return err
				}
				if err := sout.Close(); err != nil {
					return err
				}
				fmt.Println("wrote", spath)
			}
		}
		return nil
	}
	for _, f := range figs {
		var err error
		if format == "csv" {
			err = f.WriteCSV(os.Stdout)
		} else {
			err = f.WriteTable(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
