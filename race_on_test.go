//go:build race

package cic_test

// raceEnabled reports whether the binary was built with -race; allocation
// budget tests skip themselves under the detector (it changes counts).
const raceEnabled = true
