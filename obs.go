package cic

import (
	"net/http"

	"cic/internal/obs"
)

// Metrics is a decode-pipeline metrics registry: lock-free counters,
// gauges and duration histograms updated by an instrumented Receiver or
// Gateway. Attach one with WithMetrics and read it with Stats() or serve
// it over HTTP with DebugHandler. See docs/OBSERVABILITY.md for the
// catalogue of metrics and their paper-section meaning.
type Metrics = obs.Registry

// Stats is a point-in-time snapshot of every metric in a registry. It
// marshals to deterministic JSON.
type Stats = obs.Snapshot

// Event is one structured decode-trace record delivered to a WithTracer
// callback: preamble detections, header decodes and packet emissions, with
// per-packet gate verdicts and timings.
type Event = obs.Event

// GateCounts tallies per-packet SED/CFO/power gate verdicts inside an
// Event.
type GateCounts = obs.GateCounts

// EventKind labels a decode-trace Event (EventDetect, EventHeader,
// EventEmit).
type EventKind = obs.EventKind

// Decode-trace event kinds.
const (
	EventDetect = obs.EventDetect
	EventHeader = obs.EventHeader
	EventEmit   = obs.EventEmit
)

// NewMetrics creates an empty metrics registry to attach via WithMetrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DebugHandler returns the ops endpoint for an instrumented process:
// /metrics (JSON snapshot), /debug/vars (expvar) and /debug/pprof. Mount
// it on a private listener (the cmd tools expose it behind -debug-addr).
func DebugHandler(m *Metrics) http.Handler { return obs.DebugMux(m) }

// WithMetrics attaches a metrics registry to a Receiver or Gateway. Every
// decode stage updates the registry with lock-free atomics; without this
// option the instrumentation is disabled and the hot path stays
// allocation- and clock-free.
func WithMetrics(m *Metrics) Option {
	return func(o *receiverOptions) { o.metrics = m }
}

// WithTracer attaches a decode-event tracer: fn receives one structured
// Event per packet lifecycle stage (detect, header, emit). fn may be
// invoked from multiple goroutines concurrently and must be safe for
// concurrent use; a streaming Gateway issues emit events in delivery
// (air-time) order.
func WithTracer(fn func(Event)) Option {
	return func(o *receiverOptions) { o.tracer = fn }
}
