package cic

import (
	"net/http"

	"cic/internal/obs"
)

// Metrics is a decode-pipeline metrics registry: lock-free counters,
// gauges and duration histograms updated by an instrumented Receiver or
// Gateway. Attach one with WithMetrics and read it with Stats() or serve
// it over HTTP with DebugHandler. See docs/OBSERVABILITY.md for the
// catalogue of metrics and their paper-section meaning.
type Metrics = obs.Registry

// Stats is a point-in-time snapshot of every metric in a registry. It
// marshals to deterministic JSON.
type Stats = obs.Snapshot

// Event is one structured decode-trace record delivered to a WithTracer
// callback: preamble detections, header decodes and packet emissions, with
// per-packet gate verdicts and timings.
type Event = obs.Event

// GateCounts tallies per-packet SED/CFO/power gate verdicts inside an
// Event.
type GateCounts = obs.GateCounts

// EventKind labels a decode-trace Event (EventDetect, EventHeader,
// EventEmit).
type EventKind = obs.EventKind

// Decode-trace event kinds.
const (
	EventDetect = obs.EventDetect
	EventHeader = obs.EventHeader
	EventEmit   = obs.EventEmit
)

// FlightRecorder is a fixed-size lock-free ring of recent structured
// decode/session events, dumpable at /debug/flight for post-mortems.
// A nil recorder drops everything, so it can be threaded unconditionally.
type FlightRecorder = obs.FlightRecorder

// FlightEvent is one flight-recorder entry.
type FlightEvent = obs.FlightEvent

// FlightScope stamps flight events with a session's correlation id and
// station; attach one to a Gateway with WithFlightScope.
type FlightScope = obs.FlightScope

// NewMetrics creates an empty metrics registry to attach via WithMetrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewFlightRecorder creates a flight recorder retaining the last `size`
// events (a default capacity when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// DebugHandler returns the ops endpoint for an instrumented process:
// /metrics (JSON snapshot or Prometheus text exposition, content
// negotiated), /debug/vars (expvar) and /debug/pprof. Pass a flight
// recorder to additionally mount /debug/flight. Mount it on a private
// listener (the cmd tools expose it behind -debug-addr).
func DebugHandler(m *Metrics, flight ...*FlightRecorder) http.Handler {
	return obs.DebugMux(m, flight...)
}

// WithMetrics attaches a metrics registry to a Receiver or Gateway. Every
// decode stage updates the registry with lock-free atomics; without this
// option the instrumentation is disabled and the hot path stays
// allocation- and clock-free.
func WithMetrics(m *Metrics) Option {
	return func(o *receiverOptions) { o.metrics = m }
}

// WithTracer attaches a decode-event tracer: fn receives one structured
// Event per packet lifecycle stage (detect, header, emit). fn may be
// invoked from multiple goroutines concurrently and must be safe for
// concurrent use; a streaming Gateway issues emit events in delivery
// (air-time) order.
func WithTracer(fn func(Event)) Option {
	return func(o *receiverOptions) { o.tracer = fn }
}

// WithFlightScope attaches a flight-recorder scope to a Gateway: emit
// verdicts and worker-panic incidents are recorded into the ring under
// the scope's correlation id. Recording is off the //cic:hotpath decode
// loop (events fire at the emit boundary and on recovery paths) and a
// nil scope is a free no-op.
func WithFlightScope(s *FlightScope) Option {
	return func(o *receiverOptions) { o.flight = s }
}
