package cic_test

import (
	"bytes"
	"testing"

	"cic"
)

// FuzzReadCF32: arbitrary byte streams must either parse into ⌊n/8⌋
// samples or return an error — never panic.
func FuzzReadCF32(f *testing.F) {
	var buf bytes.Buffer
	_ = cic.WriteCF32(&buf, []complex128{1, 2i, -3})
	f.Add(buf.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		iq, err := cic.ReadCF32(bytes.NewReader(raw))
		if err != nil {
			if len(raw)%8 == 0 {
				t.Fatalf("aligned stream rejected: %v", err)
			}
			return
		}
		if len(iq) != len(raw)/8 {
			t.Fatalf("parsed %d samples from %d bytes", len(iq), len(raw))
		}
	})
}
