package cic_test

import (
	"fmt"
	"log"

	"cic"
)

// The simplest possible loopback: modulate one packet, decode it.
func Example() {
	cfg := cic.DefaultConfig()
	air, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("hello lora"), StartSample: 4096, SNR: 25},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	recv, err := cic.NewReceiver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	packets, err := recv.DecodeSource(air)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range packets {
		fmt.Printf("%q ok=%v\n", p.Payload, p.OK)
	}
	// Output: "hello lora" ok=true
}

// Decoding a two-packet collision that a standard gateway would lose.
func ExampleReceiver_collision() {
	cfg := cic.DefaultConfig()
	sym := int64(cfg.SamplesPerSymbol())
	air, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("first"), StartSample: 4096, SNR: 26, CFO: 1500},
		{Payload: []byte("second"), StartSample: 4096 + 20*sym + 157, SNR: 23, CFO: -2400},
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	recv, err := cic.NewReceiver(cfg) // CIC by default
	if err != nil {
		log.Fatal(err)
	}
	packets, err := recv.DecodeSource(air)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range packets {
		if p.OK {
			fmt.Printf("%s\n", p.Payload)
		}
	}
	// Output:
	// first
	// second
}

// Selecting a baseline algorithm for comparison.
func ExampleWithAlgorithm() {
	cfg := cic.DefaultConfig()
	recv, err := cic.NewReceiver(cfg, cic.WithAlgorithm(cic.AlgorithmFTrack))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(recv.Algorithm())
	// Output: ftrack
}

// Streaming decode with the Gateway: feed SDR-sized chunks, read packets
// from a channel.
func ExampleGateway() {
	cfg := cic.DefaultConfig()
	air, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("streamed"), StartSample: 4096, SNR: 25},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	iq := cic.Samples(air)

	gw, err := cic.NewGateway(cfg)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range gw.Packets() {
			fmt.Printf("%q ok=%v\n", p.Payload, p.OK)
		}
	}()
	for off := 0; off < len(iq); off += 8192 {
		end := off + 8192
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	gw.Close()
	<-done
	// Output: "streamed" ok=true
}
