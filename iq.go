package cic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"cic/internal/dsp"
)

// newDecimator adapts the internal FIR decimator.
func newDecimator(factor int) (*dsp.Decimator, error) {
	return dsp.NewDecimator(factor, 0)
}

// IQ file handling in the .cf32 format used by GNU Radio and most SDR
// tooling: interleaved little-endian float32 pairs (I, Q).

// WriteCF32 writes IQ samples in cf32 format.
func WriteCF32(w io.Writer, iq []complex128) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	for _, v := range iq {
		binary.LittleEndian.PutUint32(scratch[0:4], math.Float32bits(float32(real(v))))
		binary.LittleEndian.PutUint32(scratch[4:8], math.Float32bits(float32(imag(v))))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCF32 reads all IQ samples from a cf32 stream. For long captures
// prefer CF32Reader, which decodes in caller-sized chunks with constant
// memory (the cic-decode -stream and cic-feed path).
func ReadCF32(r io.Reader) ([]complex128, error) {
	cr := NewCF32Reader(r)
	var out []complex128
	buf := make([]complex128, 4096)
	for {
		n, err := cr.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// CF32Reader incrementally decodes a cf32 stream (interleaved
// little-endian float32 I, Q) into caller-provided chunks, so an
// arbitrarily long capture streams through fixed memory.
type CF32Reader struct {
	br *bufio.Reader
}

// NewCF32Reader wraps r (a file, pipe, network stream, or stdin).
func NewCF32Reader(r io.Reader) *CF32Reader {
	return &CF32Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Read fills dst with up to len(dst) samples and reports how many were
// decoded. At a clean end of stream it returns io.EOF (possibly
// alongside n > 0 decoded samples); a stream ending mid-sample is an
// error.
func (r *CF32Reader) Read(dst []complex128) (int, error) {
	var scratch [8]byte
	for i := range dst {
		_, err := io.ReadFull(r.br, scratch[:])
		if errors.Is(err, io.EOF) {
			return i, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return i, fmt.Errorf("cic: cf32 stream truncated mid-sample")
		}
		if err != nil {
			return i, err
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(scratch[0:4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(scratch[4:8]))
		dst[i] = complex(float64(re), float64(im))
	}
	return len(dst), nil
}

// WriteCF32File writes IQ samples to a cf32 file.
func WriteCF32File(path string, iq []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCF32(f, iq); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCF32File reads a cf32 file.
func ReadCF32File(path string) ([]complex128, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCF32(f)
}

// Decimate low-pass filters and downsamples an IQ capture by an integer
// factor — the bridge between a wideband SDR recording and the decoder's
// working rate. For example, a 2 MHz USRP capture of 250 kHz LoRa
// (8× oversampled) decimated by 2 decodes with Oversampling: 4.
func Decimate(iq []complex128, factor int) ([]complex128, error) {
	d, err := newDecimator(factor)
	if err != nil {
		return nil, err
	}
	return d.Process(iq), nil
}
