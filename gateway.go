package cic

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/phy"
	"cic/internal/rx"
)

// Gateway is a streaming CIC receiver: push raw IQ samples in arbitrary
// chunks as they arrive from an SDR front end, and receive decoded packets
// on a channel as soon as each transmission completes. This is the paper's
// §6 deployment shape — a demodulator co-located with the radio or running
// as a virtual gateway in the cloud — in contrast to the batch
// Receiver.DecodeBuffer API.
//
//	gw, _ := cic.NewGateway(cfg, cic.WithWorkers(4))
//	go func() {
//	    for pkt := range gw.Packets() {
//	        handle(pkt)
//	    }
//	}()
//	for chunk := range sdr {
//	    gw.Write(chunk)
//	}
//	gw.Close()
//
// Internally the gateway keeps a bounded ring of recent samples, scans each
// newly arrived region for preambles incrementally, and decodes a packet
// once the air has moved past its end (by which time every transmission
// that could interfere with it has itself been detected, so the CIC
// boundary bookkeeping is complete).
//
// Decoding is pipelined: the ingest goroutine detects preambles, decodes
// each completed packet's header (cheap, and order-sensitive — header
// decode fixes the packet length that later packets' boundary bookkeeping
// depends on), snapshots the packet's samples out of the ring with a
// two-segment bulk copy, and hands the expensive payload demodulation to a
// pool of workers, each owning a private core.Demodulator. A reorder
// buffer delivers results on Packets() in dispatch (air-time) order, so
// the output sequence is identical to a single-worker gateway.
// Backpressure is bounded by the pool depth: when every worker is busy and
// the job queue is full, Write blocks.
//
// Write, Close, Packets and BufferedSamples are all safe for concurrent
// use (Write and Close serialise on an internal mutex).
type Gateway struct {
	cfg     Config
	fcfg    frame.Config
	det     *rx.Detector
	hdrDM   *core.Demodulator // header demodulation on the ingest goroutine
	out     chan Packet
	maxPkt  int64 // samples in a max-length packet
	scanLag int64 // how far detection trails the newest sample
	workers int

	// Ingest state, guarded by wmu (Write, Close and the flush path
	// serialise on it; ring samples are only touched while holding it).
	wmu      sync.Mutex
	closed   bool
	buf      []complex128 // ring storage: sample a lives at buf[a%len(buf)]
	base     atomic.Int64 // absolute index of the oldest retained sample
	written  atomic.Int64 // absolute index one past the newest sample
	scanned  int64        // scan frontier (exclusive)
	pending  []*rx.Packet // detected, not yet dispatched
	active   []*rx.Packet // all tracked packets still relevant as interferers
	maxIDSeq int
	seq      int64 // dispatch sequence number (reorder key)

	jobs        chan decodeJob
	results     chan seqPacket
	workerWG    sync.WaitGroup
	reorderDone chan struct{}
	snapPool    sync.Pool

	// Observability. reg is the WithMetrics registry (nil when detached);
	// m is the pre-resolved handle set (the shared no-op set when reg is
	// nil, so every stage updates fields unconditionally without branching
	// on enablement). detectedAt stamps each tracked packet's wall-clock
	// detection instant for the decode-latency histogram and emit events;
	// it is only allocated when metrics or tracing are on, so the disabled
	// path never reads the clock. Guarded by wmu (ingest path only).
	reg        *Metrics
	m          *obs.DecodeMetrics
	tracer     obs.Tracer
	detectedAt map[int]time.Time

	// Resilience hooks (WithDecodeInterceptor / WithPanicHook): the
	// interceptor transforms each worker result before reorder; the
	// panic hook observes recovered worker panics. Both nil by default.
	intercept func(Packet) Packet
	panicHook func(stage string, recovered any)

	// flight records emit verdicts and worker-panic incidents into the
	// session's flight-recorder scope (WithFlightScope). Nil when no
	// recorder is attached; never touched from the //cic:hotpath loop.
	flight *obs.FlightScope
}

// decodeJob carries one dispatched packet to the worker pool. The ingest
// goroutine has already decoded the header; the worker demodulates the
// payload against a private snapshot of the ring, so it never contends
// with ingest for sample access.
type decodeJob struct {
	seq    int64
	ready  bool   // result is final (header failed): just forward it
	result Packet // prefilled Start/SNR/CFO; final when ready

	pkt       *rx.Packet   // private clone, NSymbols refined from the header
	others    []*rx.Packet // private clones of the interferer geometry
	syms      []uint16     // header symbols (cap covers the payload)
	snap      []complex128 // samples [snapStart, snapStart+len(snap))
	snapStart int64
	snapBuf   *[]complex128 // pool token for snap

	// Trace context (zero-valued when metrics and tracing are off).
	id         int            // packet ID assigned at detection
	detectedAt time.Time      // wall-clock detection instant
	gates      obs.GateCounts // header-phase gate verdicts
}

// seqPacket is a decoded packet tagged with its dispatch sequence number
// plus the trace context the reorder stage needs for latency accounting
// and emit events.
type seqPacket struct {
	seq int64
	pkt Packet

	id         int
	headerOK   bool
	nsyms      int
	gates      obs.GateCounts
	detectedAt time.Time // detection instant (zero when tracing is off)
	doneAt     time.Time // worker completion instant (zero when metrics off)
}

// ErrGatewayClosed is returned by Write after Close.
var ErrGatewayClosed = errors.New("cic: gateway closed")

// NewGateway builds a streaming gateway. Options are as for NewReceiver;
// only the CIC and strawman algorithms support streaming (the baselines
// exist for offline comparison), and any option with no streaming effect
// is rejected rather than silently ignored. WithWorkers sets the payload
// decode pool size (default GOMAXPROCS).
func NewGateway(cfg Config, options ...Option) (*Gateway, error) {
	fc, err := cfg.frameConfig()
	if err != nil {
		return nil, err
	}
	o := receiverOptions{algo: AlgorithmCIC}
	for _, opt := range options {
		opt(&o)
	}
	if o.algo != AlgorithmCIC && o.algo != AlgorithmStrawman && o.algo != "" {
		return nil, fmt.Errorf("cic: gateway streaming supports cic/strawman, not %q", o.algo)
	}
	if len(o.batchOnly) > 0 {
		return nil, fmt.Errorf("cic: option %s has no effect on a streaming gateway", o.batchOnly[0])
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dmx := obs.NewDecodeMetrics(o.metrics)
	det, err := rx.NewDetector(fc, rx.DetectorOptions{Metrics: dmx})
	if err != nil {
		return nil, err
	}
	coreOpts := core.Options{
		Strawman:           o.algo == AlgorithmStrawman,
		DisableSED:         o.disableSED,
		DisableCFOFilter:   o.disableCFOFilter,
		DisablePowerFilter: o.disablePowerFilter,
		Metrics:            dmx,
	}
	hdrDM, err := core.NewDemodulator(fc, coreOpts)
	if err != nil {
		return nil, err
	}
	maxPkt := int64(fc.PreambleSampleCount() + phy.MaxSymbolCount(fc.PHY)*fc.Chirp.SamplesPerSymbol())
	m := int64(fc.Chirp.SamplesPerSymbol())
	g := &Gateway{
		cfg:     cfg,
		fcfg:    fc,
		det:     det,
		hdrDM:   hdrDM,
		out:     make(chan Packet, 64),
		maxPkt:  maxPkt,
		scanLag: 2 * m,
		workers: workers,
		// Ring must hold the longest packet plus detection lag plus a full
		// scan region; triple the packet length is comfortably enough.
		buf:         make([]complex128, 3*maxPkt),
		jobs:        make(chan decodeJob, workers),
		results:     make(chan seqPacket, workers),
		reorderDone: make(chan struct{}),
		reg:         o.metrics,
		m:           dmx,
		tracer:      obs.Tracer(o.tracer),
		intercept:   o.intercept,
		panicHook:   o.panicHook,
		flight:      o.flight,
	}
	if o.metrics != nil || o.tracer != nil {
		g.detectedAt = make(map[int]time.Time)
	}
	g.snapPool.New = func() any {
		s := make([]complex128, maxPkt)
		return &s
	}
	dms := make([]*core.Demodulator, workers)
	for w := range dms {
		if dms[w], err = core.NewDemodulator(fc, coreOpts); err != nil {
			return nil, err
		}
	}
	for _, dm := range dms {
		g.workerWG.Add(1)
		go g.worker(dm)
	}
	go func() {
		g.reorder()
		close(g.reorderDone)
	}()
	return g, nil
}

// Packets returns the channel on which decoded packets are delivered. The
// channel is closed by Close after the final flush.
func (g *Gateway) Packets() <-chan Packet { return g.out }

// BufferedSamples reports how many samples the gateway currently retains.
func (g *Gateway) BufferedSamples() int64 {
	return g.written.Load() - g.base.Load()
}

// Workers reports the payload decode pool size.
func (g *Gateway) Workers() int { return g.workers }

// Write appends IQ samples to the stream and processes whatever became
// decodable. It may block when every decode worker is busy and the job
// queue is full, or when the Packets channel is full (backpressure).
func (g *Gateway) Write(iq []complex128) (int, error) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	if g.closed {
		return 0, ErrGatewayClosed
	}
	g.m.SamplesIngested.Add(int64(len(iq)))
	g.writeBulk(iq)
	g.process(false) //cic:lock-ok: dispatch sends on g.jobs under wmu by design — the bounded queue is the documented backpressure contract, and Close (the only other wmu holder) drains it
	return len(iq), nil
}

// Close flushes the stream (decoding every packet whose samples are fully
// buffered, even if the air has not moved past its end), drains the worker
// pool and closes the Packets channel. Close is idempotent and safe to
// call concurrently with Write.
func (g *Gateway) Close() error {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	if g.closed {
		return nil
	}
	g.process(true) //cic:lock-ok: final flush under wmu serialises with Write; workers drain g.jobs so the send cannot block forever
	g.closed = true
	close(g.jobs)
	g.workerWG.Wait() //cic:lock-ok: shutdown barrier — workers never take wmu, so the wait under it cannot deadlock, and holding it keeps Write/Close mutually exclusive
	close(g.results)
	<-g.reorderDone //cic:lock-ok: reorder goroutine exits once results closes; the receive is the shutdown handshake, not a steady-state block
	return nil
}

// writeBulk appends samples to the ring with at most two copy calls,
// evicting the oldest samples when full. Caller holds wmu.
func (g *Gateway) writeBulk(iq []complex128) {
	n := int64(len(g.buf))
	written := g.written.Load()
	if int64(len(iq)) > n {
		// Samples that would be evicted before they could ever be read:
		// account for them without copying.
		skip := int64(len(iq)) - n
		g.m.SamplesDropped.Add(skip)
		written += skip
		iq = iq[skip:]
	}
	newWritten := written + int64(len(iq))
	if base := g.base.Load(); newWritten-base > n {
		g.base.Store(newWritten - n)
	}
	pos := written % n
	c := copy(g.buf[pos:], iq)
	copy(g.buf, iq[c:])
	g.written.Store(newWritten)
}

// readRing fills dst with samples for the absolute window
// [start, start+len(dst)), zero-filling outside the retained span, using
// at most two copy calls. Caller holds wmu (the ring is only mutated and
// read on the ingest path; decode workers read private snapshots).
func (g *Gateway) readRing(dst []complex128, start int64) {
	n := int64(len(g.buf))
	base, written := g.base.Load(), g.written.Load()
	lo, hi := start, start+int64(len(dst))
	from, to := lo, hi
	if from < base {
		from = base
	}
	if to > written {
		to = written
	}
	if to <= from {
		clear(dst)
		return
	}
	clear(dst[:from-lo])
	clear(dst[to-lo:])
	span := to - from
	pos := from % n
	first := n - pos
	if first > span {
		first = span
	}
	copy(dst[from-lo:], g.buf[pos:pos+first])
	copy(dst[from-lo+first:to-lo], g.buf[:span-first])
}

// ringSource adapts the ring buffer as an rx.SampleSource for the ingest
// goroutine (detection and header demodulation).
type ringSource struct{ g *Gateway }

func (r ringSource) Read(dst []complex128, start int64) { r.g.readRing(dst, start) }

func (r ringSource) Span() (int64, int64) {
	return r.g.base.Load(), r.g.written.Load()
}

// process advances detection and dispatches completed packets to the
// worker pool. flush forces dispatch of everything currently buffered.
// Caller holds wmu.
func (g *Gateway) process(flush bool) {
	src := ringSource{g}
	written := g.written.Load()

	// Detection trails the newest sample by scanLag so every scan window is
	// fully buffered.
	scanTo := written - g.scanLag
	if flush {
		scanTo = written
	}
	if scanTo > g.scanned {
		t0 := g.m.DetectTime.Start()
		found := g.det.ScanDownchirpRange(src, g.scanned, scanTo)
		g.m.DetectTime.Since(t0)
		for _, p := range found {
			if g.known(p) {
				continue
			}
			g.maxIDSeq++
			p.ID = g.maxIDSeq
			p.NSymbols = phy.MaxSymbolCount(g.fcfg.PHY)
			g.pending = append(g.pending, p)
			g.active = append(g.active, p)
			// Count preambles only after the known() dedup: incremental
			// scans re-find tracked packets, and those are not detections.
			g.m.PreamblesDetected.Inc()
			if g.detectedAt != nil {
				g.detectedAt[p.ID] = obs.Now()
			}
			if g.tracer != nil {
				g.tracer(obs.Event{
					Kind:     obs.EventDetect,
					PacketID: p.ID,
					Start:    p.Start,
					SNRdB:    p.SNRdB,
					CFOHz:    p.CFOHz,
					Score:    p.Score,
				})
			}
		}
		g.scanned = scanTo
	}

	// Dispatch pending packets whose span is complete (or everything on
	// flush), oldest first — the sequence number assigned at dispatch keys
	// the reorder buffer, so delivery order matches this selection order.
	for {
		var next *rx.Packet
		idx := -1
		for i, p := range g.pending {
			if flush || p.End(g.fcfg)+g.scanLag <= written {
				if next == nil || p.Start < next.Start {
					next, idx = p, i
				}
			}
		}
		if next == nil {
			return
		}
		g.pending = append(g.pending[:idx], g.pending[idx+1:]...)
		others := make([]*rx.Packet, 0, len(g.active)-1)
		for _, q := range g.active {
			if q != next {
				others = append(others, q)
			}
		}
		g.dispatch(src, next, others)

		// Retire tracked packets whose samples have left the ring: they can
		// no longer interfere with anything still decodable.
		base := g.base.Load()
		keep := g.active[:0]
		for _, q := range g.active {
			if q.End(g.fcfg) > base {
				keep = append(keep, q)
			}
		}
		g.active = keep
	}
}

// dispatch decodes one packet's header on the ingest goroutine (fixing its
// length, which later packets' boundary bookkeeping reads), snapshots its
// samples out of the ring, and queues the payload for a pool worker. The
// send blocks when the pool is saturated (bounded backpressure).
func (g *Gateway) dispatch(src rx.SampleSource, p *rx.Packet, others []*rx.Packet) {
	fc := g.fcfg
	t0 := g.m.DispatchTime.Start()
	g.m.CollisionSize.Observe(float64(len(others)))
	job := decodeJob{seq: g.seq, id: p.ID, result: Packet{Start: p.Start, SNR: p.SNRdB, CFO: p.CFOHz}}
	g.seq++
	if g.detectedAt != nil {
		job.detectedAt = g.detectedAt[p.ID]
		delete(g.detectedAt, p.ID)
	}
	syms := make([]uint16, 0, p.NSymbols)
	for s := 0; s < phy.HeaderSymbolCount; s++ {
		syms = append(syms, g.hdrDM.DemodulateSymbol(src, p, s, others))
	}
	job.gates = g.hdrDM.TakeGateTally()
	hdr, ok := rx.HeaderFromSymbols(syms, fc.PHY)
	if !ok {
		g.m.HeaderFailures.Inc()
		g.traceHeader(p, job.seq, false)
		job.ready = true
		g.m.DispatchTime.Since(t0)
		g.jobs <- job
		g.m.QueueDepth.Set(int64(len(g.jobs)))
		return
	}
	pcfg := fc.PHY
	pcfg.CR = hdr.CR
	pcfg.HasCRC = hdr.HasCRC
	p.NSymbols = phy.SymbolCount(pcfg, int(hdr.Length))
	g.m.HeadersDecoded.Inc()
	g.traceHeader(p, job.seq, true)

	// Snapshot: a private clone of the packet and interferer geometry plus
	// a bulk copy of the packet's samples, so the worker reads without
	// touching the ring or the ingest lock.
	pc := *p
	job.pkt = &pc
	job.others = make([]*rx.Packet, len(others))
	for i, q := range others {
		qc := *q
		job.others[i] = &qc
	}
	job.syms = syms
	need := p.End(fc) - p.Start
	bufp := g.snapPool.Get().(*[]complex128)
	if int64(cap(*bufp)) < need {
		s := make([]complex128, need)
		bufp = &s
	}
	snap := (*bufp)[:need]
	g.readRing(snap, p.Start)
	job.snap = snap
	job.snapBuf = bufp
	job.snapStart = p.Start
	g.m.DispatchTime.Since(t0)
	g.jobs <- job
	g.m.QueueDepth.Set(int64(len(g.jobs)))
}

// traceHeader emits a header-stage trace event (no-op without a tracer).
func (g *Gateway) traceHeader(p *rx.Packet, seq int64, ok bool) {
	if g.tracer == nil {
		return
	}
	g.tracer(obs.Event{
		Kind:     obs.EventHeader,
		PacketID: p.ID,
		Seq:      seq,
		Start:    p.Start,
		SNRdB:    p.SNRdB,
		CFOHz:    p.CFOHz,
		HeaderOK: ok,
		NSymbols: p.NSymbols,
	})
}

// workerState is one pool worker's private arena: the demodulator plus
// the per-job scratch that the payload path reuses across packets. No
// other goroutine touches it, so the steady-state decode loop performs no
// cross-worker sharing and no per-symbol allocation.
type workerState struct {
	dm      *core.Demodulator
	src     rx.MemorySource // per-job sample view (avoids a heap escape per packet)
	altFlat []uint16        // backing store for all of one packet's ranked alternates
	altIdx  [][]uint16      // per-symbol views into altFlat
}

// worker demodulates payloads from the job queue with a private
// demodulator and forwards results to the reorder stage.
func (g *Gateway) worker(dm *core.Demodulator) {
	defer g.workerWG.Done()
	// Alternate arenas are pre-sized for a typical payload (the caps are
	// soft — a long packet grows them once and they stay grown).
	ws := &workerState{
		dm:      dm,
		altFlat: make([]uint16, 0, 512),
		altIdx:  make([][]uint16, 0, 128),
	}
	for job := range g.jobs {
		g.runJob(ws, job)
	}
}

// runJob decodes one dispatched job and forwards the result. A panic
// anywhere in the payload path (or in the interceptor) is contained to
// this one packet: the job's prefilled result is forwarded undecoded so
// the reorder sequence still advances, the worker_panics_recovered
// counter ticks, and the panic hook (if any) observes the value — the
// worker then keeps serving the queue. Without this, one hostile packet
// would kill the process and with it every other session's gateway.
func (g *Gateway) runJob(ws *workerState, job decodeJob) {
	g.m.WorkersBusy.Add(1)
	defer g.m.WorkersBusy.Add(-1)
	done := false
	defer func() {
		if done {
			return
		}
		v := recover()
		g.m.WorkerPanics.Inc()
		if g.flight != nil {
			g.flight.RecordErr("worker_panic",
				fmt.Sprintf("packet %d seq %d forwarded undecoded", job.id, job.seq),
				fmt.Sprint(v))
		}
		if g.panicHook != nil {
			g.panicHook("payload", v)
		}
		// The snapshot buffer is not repooled: the panic may have left it
		// aliased, and losing one buffer per recovered panic is cheap.
		g.results <- seqPacket{
			seq:        job.seq,
			pkt:        job.result,
			id:         job.id,
			gates:      job.gates,
			detectedAt: job.detectedAt,
			doneAt:     g.m.ReorderWait.Start(),
		}
	}()
	pkt := job.result
	gates := job.gates // header-phase verdicts tallied at dispatch
	nsyms := 0
	if !job.ready {
		t0 := g.m.DemodTime.Start()
		pkt = g.decodePayload(ws, job)
		g.m.DemodTime.Since(t0)
		gates.Add(ws.dm.TakeGateTally())
		nsyms = job.pkt.NSymbols
		g.snapPool.Put(job.snapBuf)
	}
	if g.intercept != nil {
		pkt = g.intercept(pkt)
	}
	done = true
	g.results <- seqPacket{
		seq:        job.seq,
		pkt:        pkt,
		id:         job.id,
		headerOK:   !job.ready,
		nsyms:      nsyms,
		gates:      gates,
		detectedAt: job.detectedAt,
		doneAt:     g.m.ReorderWait.Start(),
	}
}

// decodePayload runs CIC payload demodulation for one dispatched packet,
// including the pipeline's CRC-driven chase pass over ranked alternates.
// The ranked alternates returned by the picker are its scratch, so they
// are copied into the worker's flat arena before the next symbol.
//
//cic:hotpath
func (g *Gateway) decodePayload(ws *workerState, job decodeJob) Packet {
	out := job.result
	ws.src = rx.MemorySource{Base: job.snapStart, Samples: job.snap}
	src := &ws.src
	syms := job.syms
	ws.altFlat = ws.altFlat[:0]
	ws.altIdx = ws.altIdx[:0]
	for s := phy.HeaderSymbolCount; s < job.pkt.NSymbols; s++ {
		ranked := ws.dm.PickSymbolAlternates(src, job.pkt, s, job.others)
		syms = append(syms, ranked[0])
		start := len(ws.altFlat)
		ws.altFlat = append(ws.altFlat, ranked...)
		ws.altIdx = append(ws.altIdx, ws.altFlat[start:len(ws.altFlat):len(ws.altFlat)])
	}
	dec, err := phy.Decode(syms, g.fcfg.PHY) //cic:alloc-ok: sanctioned per-packet boundary — the decoded payload escapes to the caller, so phy.Decode allocates it fresh
	if err == nil && !dec.CRCOK {
		if fixed, ok := rx.ChaseDecode(syms, ws.altIdx, g.fcfg.PHY); ok { //cic:alloc-ok: CRC-recovery cold path — runs only on checksum failure, off the steady-state budget
			dec = fixed
			g.m.ChaseRecovered.Inc()
		}
	}
	if err != nil {
		g.m.CRCFail.Inc()
		return out
	}
	if dec.CRCOK {
		g.m.CRCPass.Inc()
	} else {
		g.m.CRCFail.Inc()
	}
	out.Payload = dec.Payload
	out.OK = dec.CRCOK
	out.FECCorrected = dec.FECCorrected
	return out
}

// reorder delivers worker results on the Packets channel in dispatch
// order. The held map is bounded by the number of jobs in flight, which
// the pool depth bounds in turn.
func (g *Gateway) reorder() {
	defer close(g.out)
	next := int64(0)
	held := make(map[int64]seqPacket)
	for r := range g.results {
		if r.seq != next {
			held[r.seq] = r
			g.m.ReorderHeld.Set(int64(len(held)))
			continue
		}
		g.emit(r)
		next++
		for {
			p, ok := held[next]
			if !ok {
				break
			}
			delete(held, next)
			g.m.ReorderHeld.Set(int64(len(held)))
			g.emit(p)
			next++
		}
	}
}

// emit delivers one packet in dispatch order and settles its latency
// accounting: time held in the reorder buffer, preamble-detect to emit
// latency, and the emit trace event.
func (g *Gateway) emit(r seqPacket) {
	g.m.ReorderWait.Since(r.doneAt)
	g.out <- r.pkt
	g.m.PacketsEmitted.Inc()
	g.m.DecodeLatency.Since(r.detectedAt)
	if g.tracer != nil {
		ev := obs.Event{
			Kind:         obs.EventEmit,
			PacketID:     r.id,
			Seq:          r.seq,
			Start:        r.pkt.Start,
			SNRdB:        r.pkt.SNR,
			CFOHz:        r.pkt.CFO,
			HeaderOK:     r.headerOK,
			NSymbols:     r.nsyms,
			CRCOK:        r.pkt.OK,
			PayloadLen:   len(r.pkt.Payload),
			FECCorrected: r.pkt.FECCorrected,
			Gates:        r.gates,
		}
		if !r.detectedAt.IsZero() {
			ev.Latency = obs.Since(r.detectedAt)
		}
		g.tracer(ev)
	}
	if g.flight != nil {
		gates := r.gates
		g.flight.RecordEvent(obs.FlightEvent{
			Kind:   "emit",
			Packet: r.id,
			CRCOK:  r.pkt.OK,
			Gates:  &gates,
		})
	}
}

// known reports whether a detection duplicates a tracked packet.
func (g *Gateway) known(p *rx.Packet) bool {
	m := int64(g.fcfg.Chirp.SamplesPerSymbol())
	for _, q := range g.active {
		d := p.Start - q.Start
		if d < 0 {
			d = -d
		}
		if d < m/2 {
			return true
		}
	}
	return false
}

// Config returns the gateway's configuration.
func (g *Gateway) Config() Config { return g.cfg }

// Stats returns a snapshot of the registry attached with WithMetrics; the
// zero Stats when none is attached. Safe to call concurrently with Write.
func (g *Gateway) Stats() Stats { return g.reg.Snapshot() }

// MaxPacketSamples reports the airtime budget (in samples) the gateway
// assumes for an undecoded packet — the ring holds three times this.
func (g *Gateway) MaxPacketSamples() int64 { return g.maxPkt }
