package cic

import (
	"errors"
	"fmt"
	"sync"

	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/rx"
)

// Gateway is a streaming CIC receiver: push raw IQ samples in arbitrary
// chunks as they arrive from an SDR front end, and receive decoded packets
// on a channel as soon as each transmission completes. This is the paper's
// §6 deployment shape — a demodulator co-located with the radio or running
// as a virtual gateway in the cloud — in contrast to the batch
// Receiver.DecodeBuffer API.
//
//	gw, _ := cic.NewGateway(cfg)
//	go func() {
//	    for pkt := range gw.Packets() {
//	        handle(pkt)
//	    }
//	}()
//	for chunk := range sdr {
//	    gw.Write(chunk)
//	}
//	gw.Close()
//
// Internally the gateway keeps a bounded ring of recent samples, scans each
// newly arrived region for preambles incrementally, and decodes a packet
// once the air has moved past its end (by which time every transmission
// that could interfere with it has itself been detected, so the CIC
// boundary bookkeeping is complete). Write and Close are not safe for
// concurrent use with each other; the Packets channel may be consumed from
// any goroutine.
type Gateway struct {
	cfg     Config
	fcfg    frame.Config
	det     *rx.Detector
	dm      *core.Demodulator
	out     chan Packet
	closed  bool
	maxPkt  int64 // samples in a max-length packet
	scanLag int64 // how far detection trails the newest sample

	mu       sync.Mutex
	buf      []complex128 // ring storage
	base     int64        // absolute index of buf[head]
	head     int          // ring offset of absolute index `base`
	count    int64        // valid samples in the ring
	written  int64        // absolute index one past the newest sample
	scanned  int64        // scan frontier (exclusive)
	pending  []*rx.Packet // detected, not yet decoded
	active   []*rx.Packet // all tracked packets still relevant as interferers
	maxIDSeq int
}

// ErrGatewayClosed is returned by Write after Close.
var ErrGatewayClosed = errors.New("cic: gateway closed")

// NewGateway builds a streaming gateway. Options are as for NewReceiver;
// only the CIC and strawman algorithms support streaming (the baselines
// exist for offline comparison).
func NewGateway(cfg Config, options ...Option) (*Gateway, error) {
	fc, err := cfg.frameConfig()
	if err != nil {
		return nil, err
	}
	o := receiverOptions{algo: AlgorithmCIC}
	for _, opt := range options {
		opt(&o)
	}
	if o.algo != AlgorithmCIC && o.algo != AlgorithmStrawman && o.algo != "" {
		return nil, fmt.Errorf("cic: gateway streaming supports cic/strawman, not %q", o.algo)
	}
	det, err := rx.NewDetector(fc, rx.DetectorOptions{})
	if err != nil {
		return nil, err
	}
	coreOpts := core.Options{
		Strawman:           o.algo == AlgorithmStrawman,
		DisableSED:         o.disableSED,
		DisableCFOFilter:   o.disableCFOFilter,
		DisablePowerFilter: o.disablePowerFilter,
	}
	dm, err := core.NewDemodulator(fc, coreOpts)
	if err != nil {
		return nil, err
	}
	maxPkt := int64(fc.PreambleSampleCount() + phy.MaxSymbolCount(fc.PHY)*fc.Chirp.SamplesPerSymbol())
	m := int64(fc.Chirp.SamplesPerSymbol())
	g := &Gateway{
		cfg:     cfg,
		fcfg:    fc,
		det:     det,
		dm:      dm,
		out:     make(chan Packet, 64),
		maxPkt:  maxPkt,
		scanLag: 2 * m,
		// Ring must hold the longest packet plus detection lag plus a full
		// scan region; triple the packet length is comfortably enough.
		buf: make([]complex128, 3*maxPkt),
	}
	return g, nil
}

// Packets returns the channel on which decoded packets are delivered. The
// channel is closed by Close after the final flush.
func (g *Gateway) Packets() <-chan Packet { return g.out }

// BufferedSamples reports how many samples the gateway currently retains.
func (g *Gateway) BufferedSamples() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

// Write appends IQ samples to the stream and processes whatever became
// decodable. It may block when the Packets channel is full (backpressure).
func (g *Gateway) Write(iq []complex128) (int, error) {
	if g.closed {
		return 0, ErrGatewayClosed
	}
	g.mu.Lock()
	for _, v := range iq {
		g.push(v)
	}
	g.mu.Unlock()
	g.process(false)
	return len(iq), nil
}

// Close flushes the stream (decoding every packet whose samples are fully
// buffered, even if the air has not moved past its end) and closes the
// Packets channel.
func (g *Gateway) Close() error {
	if g.closed {
		return nil
	}
	g.process(true)
	g.closed = true
	close(g.out)
	return nil
}

// push appends one sample to the ring, evicting the oldest when full.
func (g *Gateway) push(v complex128) {
	n := int64(len(g.buf))
	if g.count == n {
		// Evict the oldest sample.
		g.head = (g.head + 1) % len(g.buf)
		g.base++
		g.count--
	}
	g.buf[(g.head+int(g.count))%len(g.buf)] = v
	g.count++
	g.written++
}

// ringSource adapts the ring buffer as an rx.SampleSource (zero outside).
type ringSource struct{ g *Gateway }

func (r ringSource) Read(dst []complex128, start int64) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range dst {
		idx := start + int64(i) - g.base
		if idx >= 0 && idx < g.count {
			dst[i] = g.buf[(g.head+int(idx))%len(g.buf)]
		} else {
			dst[i] = 0
		}
	}
}

func (r ringSource) Span() (int64, int64) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.base, g.base + g.count
}

// process advances detection and decodes completed packets. flush forces
// decoding of everything currently buffered.
func (g *Gateway) process(flush bool) {
	src := ringSource{g}
	g.mu.Lock()
	written := g.written
	scanFrom := g.scanned
	g.mu.Unlock()

	// Detection trails the newest sample by scanLag so every scan window is
	// fully buffered.
	scanTo := written - g.scanLag
	if flush {
		scanTo = written
	}
	if scanTo > scanFrom {
		found := g.det.ScanDownchirpRange(src, scanFrom, scanTo)
		g.mu.Lock()
		for _, p := range found {
			if g.known(p) {
				continue
			}
			g.maxIDSeq++
			p.ID = g.maxIDSeq
			p.NSymbols = phy.MaxSymbolCount(g.fcfg.PHY)
			g.pending = append(g.pending, p)
			g.active = append(g.active, p)
		}
		g.scanned = scanTo
		g.mu.Unlock()
	}

	// Decode pending packets whose span is complete (or everything on
	// flush), oldest first.
	for {
		g.mu.Lock()
		var next *rx.Packet
		idx := -1
		for i, p := range g.pending {
			if flush || p.End(g.fcfg)+g.scanLag <= written {
				if next == nil || p.Start < next.Start {
					next, idx = p, i
				}
			}
		}
		if next == nil {
			g.mu.Unlock()
			return
		}
		g.pending = append(g.pending[:idx], g.pending[idx+1:]...)
		others := make([]*rx.Packet, 0, len(g.active)-1)
		for _, q := range g.active {
			if q != next {
				others = append(others, q)
			}
		}
		g.mu.Unlock()

		pkt := g.decodeOne(src, next, others)
		g.out <- pkt // may block: backpressure

		// Retire tracked packets whose samples have left the ring: they can
		// no longer interfere with anything still decodable.
		g.mu.Lock()
		keep := g.active[:0]
		for _, q := range g.active {
			if q.End(g.fcfg) > g.base {
				keep = append(keep, q)
			}
		}
		g.active = keep
		g.mu.Unlock()
	}
}

// decodeOne runs header-then-payload CIC demodulation for one packet,
// including the pipeline's CRC-driven chase pass over ranked alternates.
func (g *Gateway) decodeOne(src rx.SampleSource, p *rx.Packet, others []*rx.Packet) Packet {
	fc := g.fcfg
	syms := make([]uint16, 0, p.NSymbols)
	for s := 0; s < phy.HeaderSymbolCount; s++ {
		syms = append(syms, g.dm.DemodulateSymbol(src, p, s, others))
	}
	out := Packet{Start: p.Start, SNR: p.SNRdB, CFO: p.CFOHz}
	hdr, ok := rx.HeaderFromSymbols(syms, fc.PHY)
	if !ok {
		return out
	}
	pcfg := fc.PHY
	pcfg.CR = hdr.CR
	pcfg.HasCRC = hdr.HasCRC
	p.NSymbols = phy.SymbolCount(pcfg, int(hdr.Length))
	var alternates [][]uint16
	for s := phy.HeaderSymbolCount; s < p.NSymbols; s++ {
		ranked := g.dm.PickSymbolAlternates(src, p, s, others)
		syms = append(syms, ranked[0])
		alternates = append(alternates, ranked)
	}
	dec, err := phy.Decode(syms, fc.PHY)
	if err == nil && !dec.CRCOK {
		if fixed, ok := rx.ChaseDecode(syms, alternates, fc.PHY); ok {
			dec = fixed
		}
	}
	if err != nil {
		return out
	}
	out.Payload = dec.Payload
	out.OK = dec.CRCOK
	out.FECCorrected = dec.FECCorrected
	return out
}

// known reports whether a detection duplicates a tracked packet.
func (g *Gateway) known(p *rx.Packet) bool {
	m := int64(g.fcfg.Chirp.SamplesPerSymbol())
	for _, q := range g.active {
		d := p.Start - q.Start
		if d < 0 {
			d = -d
		}
		if d < m/2 {
			return true
		}
	}
	return false
}

// Config returns the gateway's configuration.
func (g *Gateway) Config() Config { return g.cfg }

// MaxPacketSamples reports the airtime budget (in samples) the gateway
// assumes for an undecoded packet — the ring holds three times this.
func (g *Gateway) MaxPacketSamples() int64 { return g.maxPkt }
